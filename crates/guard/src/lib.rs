//! Resource governance and deterministic fault injection for the aqks
//! pipeline.
//!
//! A production keyword-search service cannot let one adversarial query
//! monopolize the process: pattern enumeration is combinatorial over the
//! ORM graph and the executor will happily materialize unbounded join
//! state. This crate provides the two pieces that keep a query inside a
//! box:
//!
//! * **Budgets** ([`Budget`], [`Governor`]) — a wall-clock deadline plus
//!   caps on intermediate rows, enumerated patterns, and executed
//!   interpretations. A [`Governor`] is installed ambiently (thread-local,
//!   mirroring `aqks-obs`'s recorder stack) so hot loops deep in the
//!   pipeline can charge work units without any API plumbing:
//!   [`charge_rows`], [`charge_patterns`], [`charge_interpretations`],
//!   and the deadline-only [`checkpoint`]. The first cap to trip wins and
//!   is recorded as a [`Tripped`] naming the budget kind and the site.
//!   Deadline, row, and pattern trips are *hard*: every subsequent charge
//!   fails fast with that same trip so the whole pipeline unwinds
//!   cooperatively — no panics, no torn state. The interpretation cap is
//!   *soft*: it truncates the translation loop while letting the
//!   already-translated interpretations finish executing.
//! * **Failpoints** ([`failpoint!`], [`mod@failpoint`] module) — named
//!   deterministic fault-injection sites, compiled out by default and
//!   enabled per-site via the `failpoints` cargo feature plus either the
//!   `AQKS_FAILPOINTS` environment variable or the programmatic
//!   `failpoint::enable` API. Each armed site surfaces as a typed
//!   [`failpoint::FailpointError`] through the layer's normal error
//!   channel, proving error paths end-to-end without hand-crafting
//!   corrupt inputs.
//!
//! When no governor is installed every helper is a no-op costing one
//! thread-local read — the disabled path allocates nothing (pinned by
//! `tests/overhead.rs`, mirroring the obs overhead test).

#![cfg_attr(not(test), warn(clippy::unwrap_used))]

pub mod failpoint;

pub use failpoint::FailpointError;

use std::cell::RefCell;
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// First budget trips, labeled by the charge site that tripped. Bumped
/// once per governed scope (first-trip-wins), not per failed charge, so
/// the counter reads as "queries cut short here".
static TRIPS: aqks_obs::metrics::LabeledCounter =
    aqks_obs::metrics::LabeledCounter::new("aqks_guard_trips", "site");

/// Which budget dimension was exceeded.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BudgetKind {
    /// The wall-clock deadline passed.
    Deadline,
    /// The intermediate-row cap was reached.
    Rows,
    /// The enumerated-pattern cap was reached.
    Patterns,
    /// The executed-interpretation cap was reached.
    Interpretations,
}

impl fmt::Display for BudgetKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            BudgetKind::Deadline => "deadline",
            BudgetKind::Rows => "row",
            BudgetKind::Patterns => "pattern",
            BudgetKind::Interpretations => "interpretation",
        })
    }
}

/// A budget was exceeded: which dimension, and at which pipeline site.
///
/// Sites are static strings like `"pattern.enumerate"`,
/// `"ops.HashJoin.build"`, or `"index.verify"` — stable identifiers a
/// caller can assert on and an operator can grep for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Tripped {
    /// The dimension that ran out.
    pub kind: BudgetKind,
    /// The pipeline site performing the charge that tripped.
    pub site: &'static str,
}

impl Tripped {
    /// Promote a trip into the user-facing exhaustion report.
    pub fn exhaust(self, partial: bool) -> Exhaustion {
        Exhaustion { kind: self.kind, site: self.site, partial }
    }
}

impl fmt::Display for Tripped {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} budget exhausted at `{}`", self.kind, self.site)
    }
}

impl std::error::Error for Tripped {}

/// Structured report returned alongside partial results when a budget
/// tripped: what ran out, where, and whether any results survived.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Exhaustion {
    /// The dimension that ran out.
    pub kind: BudgetKind,
    /// The pipeline site performing the charge that tripped.
    pub site: &'static str,
    /// True when results completed before the trip are being returned.
    pub partial: bool,
}

impl fmt::Display for Exhaustion {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} budget exhausted at `{}` ({})",
            self.kind,
            self.site,
            if self.partial { "partial results returned" } else { "no results completed" }
        )
    }
}

/// Declarative resource limits for one engine call. All dimensions are
/// optional; [`Budget::unlimited`] (the default) never trips.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Budget {
    /// Wall-clock limit from the moment the governor is created.
    pub timeout: Option<Duration>,
    /// Cap on intermediate rows flowing through executor operators and
    /// index verification.
    pub max_rows: Option<u64>,
    /// Cap on query patterns enumerated over the ORM graph.
    pub max_patterns: Option<u64>,
    /// Cap on interpretations translated and executed.
    pub max_interpretations: Option<u64>,
}

impl Budget {
    /// A budget with no limits; charging against it never trips.
    pub fn unlimited() -> Self {
        Self::default()
    }

    /// Set a wall-clock deadline relative to governor creation.
    pub fn with_timeout(mut self, timeout: Duration) -> Self {
        self.timeout = Some(timeout);
        self
    }

    /// Cap intermediate rows.
    pub fn with_max_rows(mut self, n: u64) -> Self {
        self.max_rows = Some(n);
        self
    }

    /// Cap enumerated patterns.
    pub fn with_max_patterns(mut self, n: u64) -> Self {
        self.max_patterns = Some(n);
        self
    }

    /// Cap executed interpretations.
    pub fn with_max_interpretations(mut self, n: u64) -> Self {
        self.max_interpretations = Some(n);
        self
    }

    /// True when no dimension is limited.
    pub fn is_unlimited(&self) -> bool {
        self.timeout.is_none()
            && self.max_rows.is_none()
            && self.max_patterns.is_none()
            && self.max_interpretations.is_none()
    }
}

struct Inner {
    deadline: Option<Instant>,
    max_rows: u64,
    max_patterns: u64,
    max_interpretations: u64,
    rows: AtomicU64,
    patterns: AtomicU64,
    interpretations: AtomicU64,
    /// Any trip was recorded (soft or hard); gates [`Governor::trip`].
    recorded: AtomicBool,
    /// Hard-cancel fast path: set exactly once by a *hard* trip, read
    /// (relaxed) by every charge so the whole pipeline unwinds.
    cancelled: AtomicBool,
    /// First trip wins; later hard-cancelled chargers fail with it.
    trip: Mutex<Option<Tripped>>,
}

/// Shared, thread-safe enforcement state for one [`Budget`].
///
/// Cloning is cheap (an `Arc` bump); all clones observe the same
/// counters and the same first trip.
#[derive(Clone)]
pub struct Governor {
    inner: Arc<Inner>,
}

impl fmt::Debug for Governor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Governor")
            .field("tripped", &self.trip())
            .field("rows", &self.rows_used())
            .field("patterns", &self.patterns_used())
            .field("interpretations", &self.interpretations_used())
            .finish()
    }
}

impl Governor {
    /// Start enforcing `budget`; the deadline clock starts now.
    pub fn new(budget: &Budget) -> Self {
        Governor {
            inner: Arc::new(Inner {
                deadline: budget.timeout.map(|t| Instant::now() + t),
                max_rows: budget.max_rows.unwrap_or(u64::MAX),
                max_patterns: budget.max_patterns.unwrap_or(u64::MAX),
                max_interpretations: budget.max_interpretations.unwrap_or(u64::MAX),
                rows: AtomicU64::new(0),
                patterns: AtomicU64::new(0),
                interpretations: AtomicU64::new(0),
                recorded: AtomicBool::new(false),
                cancelled: AtomicBool::new(false),
                trip: Mutex::new(None),
            }),
        }
    }

    /// Has any budget dimension tripped (soft or hard)?
    pub fn is_tripped(&self) -> bool {
        self.inner.recorded.load(Ordering::Relaxed)
    }

    /// The first trip, if any.
    pub fn trip(&self) -> Option<Tripped> {
        if !self.is_tripped() {
            return None;
        }
        *lock(&self.inner.trip)
    }

    /// Record a trip; first writer wins and everyone gets its value.
    ///
    /// Deadline, row, and pattern trips are *hard*: every later charge
    /// on any dimension fails fast so the pipeline cancels end to end.
    /// The interpretation cap is *soft*: it only truncates the
    /// translation loop (the charger breaks on the `Err`), and the
    /// already-translated interpretations still execute — a cap of `n`
    /// means "give me the top `n`", not "abandon the query".
    fn record_trip(&self, kind: BudgetKind, site: &'static str) -> Tripped {
        let mut slot = lock(&self.inner.trip);
        if slot.is_none() && aqks_obs::metrics::enabled() {
            TRIPS.add(site, 1);
        }
        let t = *slot.get_or_insert(Tripped { kind, site });
        self.inner.recorded.store(true, Ordering::Relaxed);
        if kind != BudgetKind::Interpretations {
            self.inner.cancelled.store(true, Ordering::Relaxed);
        }
        t
    }

    fn is_cancelled(&self) -> bool {
        self.inner.cancelled.load(Ordering::Relaxed)
    }

    /// Deadline-only check; `Err` once the deadline passed or a hard
    /// trip already happened. A deadline of zero trips immediately.
    pub fn check_deadline(&self, site: &'static str) -> Result<(), Tripped> {
        if self.is_cancelled() {
            return Err(self.trip().unwrap_or(Tripped { kind: BudgetKind::Deadline, site }));
        }
        match self.inner.deadline {
            Some(d) if Instant::now() >= d => Err(self.record_trip(BudgetKind::Deadline, site)),
            _ => Ok(()),
        }
    }

    /// Charge `n` intermediate rows at `site`.
    pub fn charge_rows(&self, site: &'static str, n: u64) -> Result<(), Tripped> {
        self.charge(BudgetKind::Rows, &self.inner.rows, self.inner.max_rows, site, n)
    }

    /// Charge `n` enumerated patterns at `site`.
    pub fn charge_patterns(&self, site: &'static str, n: u64) -> Result<(), Tripped> {
        self.charge(BudgetKind::Patterns, &self.inner.patterns, self.inner.max_patterns, site, n)
    }

    /// Charge `n` executed interpretations at `site`.
    pub fn charge_interpretations(&self, site: &'static str, n: u64) -> Result<(), Tripped> {
        self.charge(
            BudgetKind::Interpretations,
            &self.inner.interpretations,
            self.inner.max_interpretations,
            site,
            n,
        )
    }

    fn charge(
        &self,
        kind: BudgetKind,
        counter: &AtomicU64,
        max: u64,
        site: &'static str,
        n: u64,
    ) -> Result<(), Tripped> {
        if self.is_cancelled() {
            return Err(self.trip().unwrap_or(Tripped { kind, site }));
        }
        let total = counter.fetch_add(n, Ordering::Relaxed).saturating_add(n);
        if total > max {
            return Err(self.record_trip(kind, site));
        }
        Ok(())
    }

    /// Rows charged so far.
    pub fn rows_used(&self) -> u64 {
        self.inner.rows.load(Ordering::Relaxed)
    }

    /// Patterns charged so far.
    pub fn patterns_used(&self) -> u64 {
        self.inner.patterns.load(Ordering::Relaxed)
    }

    /// Interpretations charged so far.
    pub fn interpretations_used(&self) -> u64 {
        self.inner.interpretations.load(Ordering::Relaxed)
    }
}

/// Lock a mutex, recovering the data if a panicking thread poisoned it
/// (the engine catches panics at its boundary, so state must survive).
fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

thread_local! {
    static ACTIVE: RefCell<Vec<Governor>> = const { RefCell::new(Vec::new()) };
}

/// RAII handle returned by [`install`]; dropping it uninstalls the
/// governor from the ambient stack.
#[must_use = "dropping the guard uninstalls the governor"]
pub struct ActiveGovernor {
    _not_send: std::marker::PhantomData<*const ()>,
}

impl Drop for ActiveGovernor {
    fn drop(&mut self) {
        ACTIVE.with(|s| s.borrow_mut().pop());
    }
}

/// Make `gov` the thread's current governor until the returned handle
/// drops. Nested installs shadow (innermost wins), mirroring the obs
/// recorder stack.
pub fn install(gov: &Governor) -> ActiveGovernor {
    ACTIVE.with(|s| s.borrow_mut().push(gov.clone()));
    ActiveGovernor { _not_send: std::marker::PhantomData }
}

/// The innermost installed governor, if any.
pub fn current() -> Option<Governor> {
    ACTIVE.with(|s| s.borrow().last().cloned())
}

/// Deadline checkpoint against the ambient governor; no-op `Ok` when
/// none is installed or no deadline is set.
pub fn checkpoint(site: &'static str) -> Result<(), Tripped> {
    ACTIVE.with(|s| s.borrow().last().map_or(Ok(()), |g| g.check_deadline(site)))
}

/// Charge `n` rows against the ambient governor; no-op `Ok` when none.
pub fn charge_rows(site: &'static str, n: u64) -> Result<(), Tripped> {
    ACTIVE.with(|s| s.borrow().last().map_or(Ok(()), |g| g.charge_rows(site, n)))
}

/// Charge `n` patterns against the ambient governor; no-op `Ok` when none.
pub fn charge_patterns(site: &'static str, n: u64) -> Result<(), Tripped> {
    ACTIVE.with(|s| s.borrow().last().map_or(Ok(()), |g| g.charge_patterns(site, n)))
}

/// Charge `n` interpretations against the ambient governor; no-op `Ok`
/// when none.
pub fn charge_interpretations(site: &'static str, n: u64) -> Result<(), Tripped> {
    ACTIVE.with(|s| s.borrow().last().map_or(Ok(()), |g| g.charge_interpretations(site, n)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_budget_never_trips() {
        let gov = Governor::new(&Budget::unlimited());
        for _ in 0..1000 {
            gov.charge_rows("t", 1_000_000).unwrap();
            gov.check_deadline("t").unwrap();
        }
        assert!(!gov.is_tripped());
        assert_eq!(gov.trip(), None);
    }

    #[test]
    fn row_cap_trips_at_site_and_first_trip_wins() {
        let gov = Governor::new(&Budget::unlimited().with_max_rows(10));
        gov.charge_rows("a", 10).unwrap();
        let t = gov.charge_rows("b", 1).unwrap_err();
        assert_eq!(t, Tripped { kind: BudgetKind::Rows, site: "b" });
        // Later charges against other dimensions fail fast with the
        // original trip, not a new one.
        let t2 = gov.charge_patterns("c", 1).unwrap_err();
        assert_eq!(t2, t);
        assert_eq!(gov.trip(), Some(t));
    }

    #[test]
    fn zero_timeout_deadline_trips_immediately() {
        let gov = Governor::new(&Budget::unlimited().with_timeout(Duration::ZERO));
        let t = gov.check_deadline("loop").unwrap_err();
        assert_eq!(t.kind, BudgetKind::Deadline);
        assert_eq!(t.site, "loop");
    }

    #[test]
    fn pattern_and_interpretation_caps_trip() {
        let gov = Governor::new(&Budget::unlimited().with_max_patterns(2));
        gov.charge_patterns("p", 2).unwrap();
        assert_eq!(gov.charge_patterns("p", 1).unwrap_err().kind, BudgetKind::Patterns);

        let gov = Governor::new(&Budget::unlimited().with_max_interpretations(1));
        gov.charge_interpretations("i", 1).unwrap();
        assert_eq!(
            gov.charge_interpretations("i", 1).unwrap_err().kind,
            BudgetKind::Interpretations
        );
    }

    /// The interpretation cap is a soft trip: the charger's loop breaks,
    /// but other dimensions keep working so completed interpretations
    /// can still execute. Hard trips (rows) cancel everything.
    #[test]
    fn interpretation_trip_is_soft_row_trip_is_hard() {
        let gov = Governor::new(&Budget::unlimited().with_max_interpretations(1).with_max_rows(10));
        gov.charge_interpretations("engine.translate", 1).unwrap();
        gov.charge_interpretations("engine.translate", 1).unwrap_err();
        assert!(gov.is_tripped());
        // Downstream execution still passes checkpoints and row charges.
        gov.check_deadline("engine.answer").unwrap();
        gov.charge_rows("ops.Scan", 5).unwrap();
        // A hard trip then cancels everything, but the first (soft) trip
        // remains the reported cause.
        gov.charge_rows("ops.HashJoin.build", 100).unwrap_err();
        gov.check_deadline("engine.answer").unwrap_err();
        assert_eq!(gov.trip().map(|t| t.kind), Some(BudgetKind::Interpretations));
    }

    #[test]
    fn ambient_install_routes_free_functions() {
        assert!(current().is_none());
        assert_eq!(charge_rows("x", u64::MAX), Ok(()));
        let gov = Governor::new(&Budget::unlimited().with_max_rows(5));
        {
            let _g = install(&gov);
            assert!(current().is_some());
            charge_rows("x", 5).unwrap();
            assert_eq!(charge_rows("x", 1).unwrap_err().kind, BudgetKind::Rows);
        }
        assert!(current().is_none());
        // Uninstalled again: free functions are no-ops even though the
        // governor itself is tripped.
        assert_eq!(charge_rows("x", 1), Ok(()));
        assert!(gov.is_tripped());
    }

    #[test]
    fn nested_installs_shadow_innermost() {
        let outer = Governor::new(&Budget::unlimited().with_max_rows(1));
        let inner = Governor::new(&Budget::unlimited());
        let _o = install(&outer);
        {
            let _i = install(&inner);
            charge_rows("x", 100).unwrap(); // inner is unlimited
        }
        assert_eq!(charge_rows("x", 100).unwrap_err().kind, BudgetKind::Rows);
    }

    #[test]
    fn shared_across_threads() {
        let gov = Governor::new(&Budget::unlimited().with_max_rows(1000));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let g = gov.clone();
                std::thread::spawn(move || {
                    let mut trips = 0;
                    for _ in 0..1000 {
                        if g.charge_rows("t", 1).is_err() {
                            trips += 1;
                        }
                    }
                    trips
                })
            })
            .collect();
        let trips: i32 = handles.into_iter().map(|h| h.join().unwrap()).sum();
        assert!(trips > 0);
        assert_eq!(gov.trip().map(|t| t.kind), Some(BudgetKind::Rows));
    }

    #[test]
    fn exhaustion_report_renders() {
        let t = Tripped { kind: BudgetKind::Rows, site: "ops.HashJoin.build" };
        assert_eq!(t.to_string(), "row budget exhausted at `ops.HashJoin.build`");
        let e = t.exhaust(true);
        assert!(e.partial);
        assert_eq!(
            e.to_string(),
            "row budget exhausted at `ops.HashJoin.build` (partial results returned)"
        );
        assert!(Tripped { kind: BudgetKind::Deadline, site: "s" }
            .exhaust(false)
            .to_string()
            .contains("no results completed"));
    }

    #[test]
    fn budget_builder_and_unlimited_flag() {
        assert!(Budget::unlimited().is_unlimited());
        let b = Budget::unlimited()
            .with_timeout(Duration::from_millis(5))
            .with_max_rows(1)
            .with_max_patterns(2)
            .with_max_interpretations(3);
        assert!(!b.is_unlimited());
        assert_eq!(b.max_rows, Some(1));
        assert_eq!(b.max_patterns, Some(2));
        assert_eq!(b.max_interpretations, Some(3));
    }
}
