//! Plan-algebra equivalence analysis over the physical plan IR.
//!
//! A single keyword query fans out into many interpretations whose
//! physical plans are near-duplicates: the same Scan/Join subtrees
//! re-planned and re-executed per interpretation. The structural
//! fingerprint in `aqks-plancheck` only catches *syntactically*
//! identical plans; this crate proves *semantic* equivalence and then
//! exploits it:
//!
//! - [`canon`] rewrites a plan into a canonical normal form
//!   (commutative join-input and join-key ordering, predicate
//!   normalization, full filter pushdown, Project collapsing). Every
//!   rewrite emits a certificate checked against the properties
//!   inferred by `aqks_plancheck::props` — output schema and
//!   provenance, functional dependencies, uniqueness, sortedness, and
//!   cardinality bounds must all be preserved, or the rewrite is
//!   rejected with a typed [`EquivError`];
//! - [`classes`] canonicalizes an interpretation set and partitions it
//!   into equivalence classes by canonical fingerprint, catching
//!   duplicates the structural fingerprint misses;
//! - [`share`] hash-conses repeated canonical subtrees across one
//!   interpretation set into a shared-subplan DAG and executes each
//!   shared subtree once, feeding its materialized rows to every
//!   consumer through the executor's cached-rows operator.

#![cfg_attr(not(test), warn(clippy::unwrap_used))]
#![warn(missing_docs)]

use std::fmt;

use aqks_plancheck::PlanError;

pub mod canon;
pub mod classes;
pub mod share;

pub use canon::{canonicalize, certify_rewrite, Canonical};
pub use classes::{analyze, ClassAnalysis, EquivClass};
pub use share::{
    render_shared, run_shared, run_shared_opts, shared_set, SharePoint, SharedRun, SharedSet,
};

/// A rejected rewrite or a canonical plan that fails verification.
#[derive(Debug)]
pub enum EquivError {
    /// A canonicalization rewrite changed an inferred property of the
    /// subtree it rewrote; the certificate comparison names the rule
    /// and the violated property.
    Certificate {
        /// The rewrite rule that produced the rejected subtree.
        rule: &'static str,
        /// Plan-node id (in the input plan) of the rewritten subtree.
        node: usize,
        /// Which inferred property diverged, and how.
        detail: String,
    },
    /// The fully canonicalized plan failed `aqks_plancheck::verify`.
    Verify(PlanError),
}

impl fmt::Display for EquivError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EquivError::Certificate { rule, node, detail } => {
                write!(f, "rewrite `{rule}` rejected at node {node}: {detail}")
            }
            EquivError::Verify(e) => write!(f, "canonical plan failed verification: {e}"),
        }
    }
}

impl std::error::Error for EquivError {}
