//! Term-match index.
//!
//! The first step of both engines (Algorithm 2, line 5: `findMatch(t, D)`)
//! locates every relation name, attribute name, and tuple value a keyword
//! matches. This module pre-builds:
//!
//! * a metadata index over relation and attribute names, and
//! * an inverted index `token -> (relation, attribute) -> row ids` over
//!   the textual form of every stored value.
//!
//! Multi-word phrases (quoted query terms such as `"royal olive"`) are
//! answered by intersecting token postings and verifying containment on
//! the surviving rows, so phrase queries stay cheap even on larger data.

use std::collections::HashMap;

use crate::database::Database;
use crate::error::Result;

/// A keyword match against metadata.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MetaMatch {
    /// The term equals a relation's name.
    Relation {
        /// Matched relation (canonical name).
        relation: String,
    },
    /// The term equals an attribute's name.
    Attribute {
        /// Owning relation (canonical name).
        relation: String,
        /// Matched attribute (canonical name).
        attribute: String,
    },
}

/// A keyword match against tuple values of one column.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ValueMatch {
    /// Relation containing the matching tuples (canonical name).
    pub relation: String,
    /// Attribute whose values contain the term (canonical name).
    pub attribute: String,
    /// Number of *distinct tuples* whose value contains the term. The
    /// disambiguation step (Section 3.1.2) forks a pattern exactly when
    /// this is greater than one.
    pub tuple_count: usize,
}

#[derive(Debug, Default)]
struct Postings {
    /// (relation idx, attribute idx) -> sorted row ids.
    by_column: HashMap<(u32, u32), Vec<u32>>,
}

/// Pre-built index answering metadata and value matches for query terms.
#[derive(Debug)]
pub struct MatchIndex {
    relations: Vec<String>,
    attributes: Vec<Vec<String>>,
    token_postings: HashMap<String, Postings>,
    /// Lowercased full text per (relation, attribute, row) is *not* stored;
    /// phrase verification re-reads the database, which the index borrows.
    column_rows: HashMap<(u32, u32), u32>,
}

fn tokenize(text: &str) -> impl Iterator<Item = &str> {
    text.split(|c: char| !c.is_alphanumeric()).filter(|t| !t.is_empty())
}

impl MatchIndex {
    /// Builds the index by scanning every stored tuple once.
    pub fn build(db: &Database) -> Self {
        let mut relations = Vec::new();
        let mut attributes = Vec::new();
        let mut token_postings: HashMap<String, Postings> = HashMap::new();
        let mut column_rows = HashMap::new();

        for (ri, table) in db.tables().iter().enumerate() {
            relations.push(table.schema.name.clone());
            attributes.push(table.schema.attr_names().map(str::to_string).collect::<Vec<_>>());
            for (ai, _attr) in table.schema.attrs.iter().enumerate() {
                column_rows.insert((ri as u32, ai as u32), table.len() as u32);
            }
            for (rowid, row) in table.rows().iter().enumerate() {
                for (ai, v) in row.iter().enumerate() {
                    if v.is_null() {
                        continue;
                    }
                    let text = v.to_string().to_lowercase();
                    let mut seen_tokens: Vec<&str> = Vec::new();
                    for tok in tokenize(&text) {
                        if seen_tokens.contains(&tok) {
                            continue;
                        }
                        seen_tokens.push(tok);
                        let p = token_postings.entry(tok.to_string()).or_default();
                        let list = p.by_column.entry((ri as u32, ai as u32)).or_default();
                        list.push(rowid as u32);
                    }
                }
            }
        }
        MatchIndex { relations, attributes, token_postings, column_rows }
    }

    /// Metadata matches of a term: relation names first, then attributes.
    pub fn match_metadata(&self, term: &str) -> Vec<MetaMatch> {
        aqks_obs::counter("index.meta_probes", 1);
        let mut out = Vec::new();
        for r in &self.relations {
            if r.eq_ignore_ascii_case(term) {
                out.push(MetaMatch::Relation { relation: r.clone() });
            }
        }
        for (ri, attrs) in self.attributes.iter().enumerate() {
            for a in attrs {
                if a.eq_ignore_ascii_case(term) {
                    out.push(MetaMatch::Attribute {
                        relation: self.relations[ri].clone(),
                        attribute: a.clone(),
                    });
                }
            }
        }
        out
    }

    /// Value matches of a (possibly multi-word) term, with per-column
    /// matching-tuple counts. `db` must be the database the index was
    /// built from.
    ///
    /// Fallible: probe loops observe the ambient `aqks-guard` budget
    /// (deadline + row cap), and the `index.lookup` failpoint can inject
    /// a fault in instrumented builds.
    pub fn match_values(&self, db: &Database, term: &str) -> Result<Vec<ValueMatch>> {
        Ok(self
            .match_value_rows(db, term)?
            .into_iter()
            .map(|(relation, attribute, rows)| ValueMatch {
                relation,
                attribute,
                tuple_count: rows.len(),
            })
            .collect())
    }

    /// Like [`MatchIndex::match_values`] but returning the matching row
    /// ids per column — used by the unnormalized pipeline, which counts
    /// *distinct objects* (projections onto a derived key) rather than
    /// raw rows.
    pub fn match_value_rows(
        &self,
        db: &Database,
        term: &str,
    ) -> Result<Vec<(String, String, Vec<u32>)>> {
        aqks_guard::failpoint!("index.lookup");
        aqks_guard::checkpoint("index.lookup")?;
        let lower = term.to_lowercase();
        let tokens: Vec<&str> = tokenize(&lower).collect();
        if tokens.is_empty() {
            return Ok(Vec::new());
        }

        // Candidate columns: intersection of the tokens' column sets.
        // Probes and hit ratios land on the ambient trace span (if any):
        // one probe per token lookup, one hit per token found.
        aqks_obs::counter("index.probes", tokens.len() as u64);
        let mut postings: Vec<&Postings> = Vec::with_capacity(tokens.len());
        for t in &tokens {
            match self.token_postings.get(*t) {
                Some(p) => postings.push(p),
                None => {
                    aqks_obs::counter("index.token_hits", postings.len() as u64);
                    return Ok(Vec::new());
                }
            }
        }
        aqks_obs::counter("index.token_hits", postings.len() as u64);
        postings.sort_by_key(|p| p.by_column.len());
        let mut out = Vec::new();
        let (mut verified, mut matched) = (0u64, 0u64);
        'col: for (&col, rows0) in &postings[0].by_column {
            aqks_guard::checkpoint("index.verify")?;
            let mut candidates: Vec<u32> = rows0.clone();
            for p in &postings[1..] {
                let Some(rows) = p.by_column.get(&col) else { continue 'col };
                candidates = intersect_sorted(&candidates, rows);
                if candidates.is_empty() {
                    continue 'col;
                }
            }
            // Verify phrase containment (tokens may be non-adjacent in the
            // value; `contains` semantics require the literal phrase).
            // Each verified candidate is an intermediate row the budget
            // pays for.
            aqks_guard::charge_rows("index.verify", candidates.len() as u64)?;
            verified += candidates.len() as u64;
            let table = &db.tables()[col.0 as usize];
            let rows: Vec<u32> = candidates
                .into_iter()
                .filter(|&rowid| table.rows()[rowid as usize][col.1 as usize].contains_ci(&lower))
                .collect();
            matched += rows.len() as u64;
            if !rows.is_empty() {
                out.push((
                    self.relations[col.0 as usize].clone(),
                    self.attributes[col.0 as usize][col.1 as usize].clone(),
                    rows,
                ));
            }
        }
        aqks_obs::counter("index.rows_verified", verified);
        aqks_obs::counter("index.tuples_matched", matched);
        out.sort_by(|a, b| (&a.0, &a.1).cmp(&(&b.0, &b.1)));
        Ok(out)
    }

    /// Number of rows in the indexed column (test/debug aid).
    pub fn column_len(&self, relation: &str, attribute: &str) -> Option<u32> {
        let ri = self.relations.iter().position(|r| r.eq_ignore_ascii_case(relation))?;
        let ai = self.attributes[ri].iter().position(|a| a.eq_ignore_ascii_case(attribute))?;
        self.column_rows.get(&(ri as u32, ai as u32)).copied()
    }
}

fn intersect_sorted(a: &[u32], b: &[u32]) -> Vec<u32> {
    let mut out = Vec::new();
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{AttrType, RelationSchema};
    use crate::value::Value;

    fn db() -> Database {
        let mut db = Database::new("t");
        let mut s = RelationSchema::new("Student");
        s.add_attr("Sid", AttrType::Text).add_attr("Sname", AttrType::Text);
        s.set_primary_key(["Sid"]);
        db.add_relation(s).unwrap();
        let mut p = RelationSchema::new("Part");
        p.add_attr("partkey", AttrType::Int).add_attr("pname", AttrType::Text);
        p.set_primary_key(["partkey"]);
        db.add_relation(p).unwrap();
        db.insert("Student", vec![Value::str("s1"), Value::str("George")]).unwrap();
        db.insert("Student", vec![Value::str("s2"), Value::str("Green")]).unwrap();
        db.insert("Student", vec![Value::str("s3"), Value::str("Green")]).unwrap();
        db.insert("Part", vec![Value::Int(1), Value::str("small royal olive")]).unwrap();
        db.insert("Part", vec![Value::Int(2), Value::str("large royal olive")]).unwrap();
        db.insert("Part", vec![Value::Int(3), Value::str("royal green peach")]).unwrap();
        db
    }

    #[test]
    fn metadata_matches() {
        let db = db();
        let idx = MatchIndex::build(&db);
        let m = idx.match_metadata("student");
        assert_eq!(m, vec![MetaMatch::Relation { relation: "Student".into() }]);
        let m = idx.match_metadata("sname");
        assert_eq!(
            m,
            vec![MetaMatch::Attribute { relation: "Student".into(), attribute: "Sname".into() }]
        );
        assert!(idx.match_metadata("nothing").is_empty());
    }

    #[test]
    fn value_match_counts_tuples() {
        let db = db();
        let idx = MatchIndex::build(&db);
        let m = idx.match_values(&db, "Green").unwrap();
        assert_eq!(m.len(), 2, "Green appears in Student.Sname and Part.pname: {m:?}");
        let sname = m.iter().find(|v| v.relation == "Student").unwrap();
        assert_eq!(sname.tuple_count, 2);
    }

    #[test]
    fn phrase_match_requires_contiguity() {
        let db = db();
        let idx = MatchIndex::build(&db);
        let m = idx.match_values(&db, "royal olive").unwrap();
        assert_eq!(m.len(), 1);
        assert_eq!(m[0].tuple_count, 2, "'royal green peach' has both tokens but not the phrase");
    }

    #[test]
    fn no_match_returns_empty() {
        let db = db();
        let idx = MatchIndex::build(&db);
        assert!(idx.match_values(&db, "zebra").unwrap().is_empty());
        assert!(idx.match_values(&db, "").unwrap().is_empty());
    }

    #[test]
    fn match_is_case_insensitive() {
        let db = db();
        let idx = MatchIndex::build(&db);
        assert_eq!(idx.match_values(&db, "GEORGE").unwrap().len(), 1);
    }

    #[test]
    fn probe_respects_ambient_row_budget() {
        let db = db();
        let idx = MatchIndex::build(&db);
        let gov = aqks_guard::Governor::new(&aqks_guard::Budget::unlimited().with_max_rows(1));
        let _g = aqks_guard::install(&gov);
        let err = idx.match_values(&db, "Green").unwrap_err();
        match err {
            crate::Error::Budget(t) => {
                assert_eq!(t.kind, aqks_guard::BudgetKind::Rows);
                assert_eq!(t.site, "index.verify");
            }
            other => panic!("expected budget error, got {other:?}"),
        }
    }

    #[test]
    fn probe_respects_expired_deadline() {
        let db = db();
        let idx = MatchIndex::build(&db);
        let gov = aqks_guard::Governor::new(
            &aqks_guard::Budget::unlimited().with_timeout(std::time::Duration::ZERO),
        );
        let _g = aqks_guard::install(&gov);
        let err = idx.match_values(&db, "Green").unwrap_err();
        assert!(
            matches!(err, crate::Error::Budget(t) if t.kind == aqks_guard::BudgetKind::Deadline)
        );
    }

    #[cfg(feature = "failpoints")]
    #[test]
    fn lookup_failpoint_surfaces_typed_error() {
        let db = db();
        let idx = MatchIndex::build(&db);
        aqks_guard::failpoint::enable("index.lookup");
        let err = idx.match_values(&db, "Green").unwrap_err();
        assert_eq!(err, crate::Error::Fault("index.lookup"));
        aqks_guard::failpoint::disable("index.lookup");
        assert!(idx.match_values(&db, "Green").is_ok());
    }
}
