//! Metrics hot-path allocation contract, pinned with a counting global
//! allocator (same harness as the recorder's `overhead` test):
//!
//! * **disabled path**: a handle bump with the registry disabled is an
//!   early return — zero allocations;
//! * **enabled steady state**: once a handle's cell and labels are
//!   registered (first use), recording is pure atomics — also zero
//!   allocations.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};

use aqks_obs::metrics::{self, Counter, Gauge, Histogram, LabeledCounter, LabeledHistogram, Unit};

struct CountingAlloc;

static ALLOCATIONS: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    // Const-initialized and destructor-free, so reading it inside the
    // allocator can neither allocate nor touch torn-down TLS.
    static TRACKING: Cell<bool> = const { Cell::new(false) };
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let _ = TRACKING.try_with(|t| {
            if t.get() {
                ALLOCATIONS.fetch_add(1, Ordering::SeqCst);
            }
        });
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

static QUERIES: Counter = Counter::new("probe_queries");
static RETAINED: Gauge = Gauge::new("probe_retained");
static LATENCY: Histogram = Histogram::new("probe_latency_ns", Unit::Nanos);
static TRIPS: LabeledCounter = LabeledCounter::new("probe_trips", "site");
static PEAK: LabeledHistogram = LabeledHistogram::new("probe_peak_bytes", "op", Unit::Bytes);

fn exercise_handles(i: u64) {
    QUERIES.add(1);
    RETAINED.set(3);
    LATENCY.observe(i * 17);
    TRIPS.add("ops.Scan", 1);
    TRIPS.add("engine.answer", 1);
    PEAK.observe("HashJoin", i * 4096);
}

#[test]
fn metric_recording_does_not_allocate_after_first_use() {
    // Warm: initialize the global registry, register every handle and
    // label (first enabled use allocates cells — that is the cold
    // path), and touch the thread-local tracking state.
    metrics::set_enabled(true);
    exercise_handles(1);

    // Enabled steady state: pure atomics.
    TRACKING.with(|t| t.set(true));
    let before = ALLOCATIONS.load(Ordering::SeqCst);
    for i in 0..10_000 {
        exercise_handles(i);
    }
    let after = ALLOCATIONS.load(Ordering::SeqCst);
    assert_eq!(
        after - before,
        0,
        "enabled steady-state recording allocated {} time(s)",
        after - before
    );

    // Disabled path: one relaxed load and an early return.
    TRACKING.with(|t| t.set(false));
    metrics::set_enabled(false);
    TRACKING.with(|t| t.set(true));
    let before = ALLOCATIONS.load(Ordering::SeqCst);
    for i in 0..10_000 {
        exercise_handles(i);
    }
    let after = ALLOCATIONS.load(Ordering::SeqCst);
    assert_eq!(after - before, 0, "disabled recording allocated {} time(s)", after - before);

    // Sanity check that the counter itself works.
    let probe = vec![1u8, 2, 3];
    assert!(ALLOCATIONS.load(Ordering::SeqCst) > after, "allocator instrumented");
    drop(probe);
    TRACKING.with(|t| t.set(false));
    metrics::set_enabled(true);

    // The warm-up and the first (enabled) loop recorded 10_001 times.
    let snap = metrics::global().snapshot();
    assert_eq!(snap.counter_total("probe_queries"), 10_001);
    assert_eq!(snap.counter_total("probe_trips"), 20_002);
}
