//! Release-mode skip-path overhead: `verify_in_debug` compiles to a
//! branch in release builds and must not allocate. A counting global
//! allocator wraps the system allocator; only allocations made by the
//! measuring thread are counted. The pinning test is itself gated on
//! release (`cargo test --release`): in debug builds the gate runs the
//! full verifier, which allocates by design.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};

use aqks_datasets::university;
use aqks_sqlgen::ast::{ColumnRef, SelectItem, SelectStatement, TableExpr};

struct CountingAlloc;

static ALLOCATIONS: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    // Const-initialized and destructor-free, so reading it inside the
    // allocator can neither allocate nor touch torn-down TLS.
    static TRACKING: Cell<bool> = const { Cell::new(false) };
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let _ = TRACKING.try_with(|t| {
            if t.get() {
                ALLOCATIONS.fetch_add(1, Ordering::SeqCst);
            }
        });
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn student_scan() -> SelectStatement {
    SelectStatement {
        items: vec![SelectItem::Column { col: ColumnRef::new("S", "Sid"), alias: None }],
        from: vec![TableExpr::Relation { name: "Student".into(), alias: "S".into() }],
        ..SelectStatement::new()
    }
}

#[cfg(not(debug_assertions))]
#[test]
fn release_skip_path_does_not_allocate() {
    let db = university::normalized();
    let stmt = student_scan();
    let plan = aqks_sqlgen::plan(&stmt, &db).expect("plans");
    // Warm up once outside the tracked window.
    aqks_plancheck::verify_in_debug(&plan, &db, Some(&stmt)).expect("skip path succeeds");

    TRACKING.with(|t| t.set(true));
    let before = ALLOCATIONS.load(Ordering::SeqCst);
    for _ in 0..10_000 {
        aqks_plancheck::verify_in_debug(&plan, &db, Some(&stmt)).expect("skip path succeeds");
    }
    let after = ALLOCATIONS.load(Ordering::SeqCst);
    assert_eq!(after - before, 0, "release skip path allocated {} time(s)", after - before);

    // Sanity check that the counter itself works.
    let probe = vec![1u8, 2, 3];
    assert!(ALLOCATIONS.load(Ordering::SeqCst) > after, "allocator instrumented");
    drop(probe);
    TRACKING.with(|t| t.set(false));
}

/// In debug builds the same gate runs the full verifier (and so must
/// reject a corrupted plan rather than skipping).
#[cfg(debug_assertions)]
#[test]
fn debug_gate_actually_verifies() {
    let db = university::normalized();
    let stmt = student_scan();
    let plan = aqks_sqlgen::plan(&stmt, &db).expect("plans");
    aqks_plancheck::verify_in_debug(&plan, &db, Some(&stmt)).expect("clean plan passes");
    let (_, bad) = aqks_plancheck::mutate::all(&plan)
        .into_iter()
        .find(|(m, _)| *m == aqks_plancheck::mutate::Mutation::StaleColumnIndex)
        .expect("projection to corrupt");
    assert!(
        aqks_plancheck::verify_in_debug(&bad, &db, Some(&stmt)).is_err(),
        "debug gate skipped verification"
    );
}
