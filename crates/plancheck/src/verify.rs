//! Invariant checking over a property-annotated plan tree.
//!
//! [`verify`] walks the plan bottom-up, inferring [`NodeProps`] per node
//! and checking each operator against the catalog and (optionally) the
//! statement it was lowered from. The first violated invariant aborts
//! with a typed [`PlanError`] naming the offending node; a clean walk
//! returns the per-node properties plus the plan fingerprint.
//!
//! The invariants are the physical-level analogues of the SQL analyzer's
//! passes: name resolution (P1), type compatibility (P2), join
//! provenance (P3), aggregate well-formedness (P4) and duplicate
//! safety (P5) — plus planner-contract checks that have no SQL
//! counterpart (layout consistency, build-side policy, cardinality
//! bounds, statement/plan shape correspondence).

use std::collections::{BTreeSet, HashMap};

use aqks_analyze::fdmodel::lower_fd_set;
use aqks_relational::{AttrType, Database, Value};
use aqks_sqlgen::ast::{AggFunc, SelectItem, SelectStatement, TableExpr};
use aqks_sqlgen::{PhysAggItem, PhysPred, PlanNode, PlanOp};

use crate::fingerprint::fingerprint;
use crate::props::{infer, ColProp, NodeProps};

/// The class of a violated plan invariant. Stable names (see
/// [`PlanErrorKind::name`]) key the `plancheck.rejected.<kind>` counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PlanErrorKind {
    /// A scanned relation does not exist in the catalog.
    Catalog,
    /// A column index does not resolve in its input layout.
    UnresolvedColumn,
    /// A node's layout disagrees with its operator or children.
    SchemaMismatch,
    /// Join key lists are empty or of different lengths.
    JoinKeyArity,
    /// Join key sides have incompatible declared types.
    JoinKeyType,
    /// A join key pair matches neither a shared base attribute nor a
    /// declared foreign key.
    JoinProvenance,
    /// The hash-join build side contradicts the cardinality estimates.
    BuildSide,
    /// A pushed or residual predicate has incompatible operand types.
    PredType,
    /// An aggregate function over an argument of the wrong type.
    AggType,
    /// A plain aggregation output not determined by the group keys.
    UngroupedColumn,
    /// A duplicate-sensitive aggregate whose input can inflate counts
    /// through redundant rows (physical analogue of AQ-P5).
    DuplicateRisk,
    /// A contains-matched group key that merges distinct entities.
    MergedGroups,
    /// The planner's row estimate exceeds the provable upper bound.
    CardinalityBound,
    /// `SELECT DISTINCT` and the plan's Distinct operator disagree.
    LostDistinct,
    /// ORDER BY and the plan's Sort operator disagree.
    OrderMismatch,
    /// LIMIT and the plan's Limit operator disagree.
    LimitMismatch,
    /// The plan's output schema does not match the statement's.
    OutputSchema,
}

impl PlanErrorKind {
    /// Stable snake_case name (used as the rejection-counter suffix).
    pub fn name(self) -> &'static str {
        match self {
            PlanErrorKind::Catalog => "catalog",
            PlanErrorKind::UnresolvedColumn => "unresolved_column",
            PlanErrorKind::SchemaMismatch => "schema_mismatch",
            PlanErrorKind::JoinKeyArity => "join_key_arity",
            PlanErrorKind::JoinKeyType => "join_key_type",
            PlanErrorKind::JoinProvenance => "join_provenance",
            PlanErrorKind::BuildSide => "build_side",
            PlanErrorKind::PredType => "pred_type",
            PlanErrorKind::AggType => "agg_type",
            PlanErrorKind::UngroupedColumn => "ungrouped_column",
            PlanErrorKind::DuplicateRisk => "duplicate_risk",
            PlanErrorKind::MergedGroups => "merged_groups",
            PlanErrorKind::CardinalityBound => "cardinality_bound",
            PlanErrorKind::LostDistinct => "lost_distinct",
            PlanErrorKind::OrderMismatch => "order_mismatch",
            PlanErrorKind::LimitMismatch => "limit_mismatch",
            PlanErrorKind::OutputSchema => "output_schema",
        }
    }
}

/// A violated plan invariant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlanError {
    /// The violated invariant.
    pub kind: PlanErrorKind,
    /// Id of the offending plan node.
    pub node: usize,
    /// Human-readable specifics.
    pub detail: String,
}

impl PlanError {
    fn new(kind: PlanErrorKind, node: usize, detail: impl Into<String>) -> Self {
        PlanError { kind, node, detail: detail.into() }
    }
}

impl std::fmt::Display for PlanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}] node {}: {}", self.kind.name(), self.node, self.detail)
    }
}

impl std::error::Error for PlanError {}

/// The result of a clean verification: per-node properties (indexed by
/// node id, like `ExecStats::ops`) and the plan fingerprint.
#[derive(Debug, Clone)]
pub struct Verified {
    props: Vec<Option<NodeProps>>,
    /// Normalized plan fingerprint (see [`crate::fingerprint()`]).
    pub fingerprint: u64,
}

impl Verified {
    /// Properties of the node with the given id.
    pub fn props(&self, id: usize) -> Option<&NodeProps> {
        self.props.get(id).and_then(Option::as_ref)
    }

    /// Properties of the plan root.
    pub fn root<'a>(&'a self, plan: &PlanNode) -> &'a NodeProps {
        self.props(plan.id).expect("root props recorded during verification")
    }
}

/// Verifies `plan` against the catalog, and — when the originating
/// statement is supplied — against the statement's required shape.
pub fn verify(
    plan: &PlanNode,
    db: &Database,
    stmt: Option<&SelectStatement>,
) -> Result<Verified, PlanError> {
    let mut props: Vec<Option<NodeProps>> = Vec::new();
    props.resize_with(plan.max_id() + 1, || None);
    check_node(plan, db, &mut props)?;
    if let Some(stmt) = stmt {
        check_stmt(plan, stmt)?;
    }
    Ok(Verified { props, fingerprint: fingerprint(plan) })
}

/// Debug-build verification gate: full verification under
/// `debug_assertions`, a branch-only no-op (zero allocations) in release
/// builds — the skip path the counting-allocator test pins.
pub fn verify_in_debug(
    plan: &PlanNode,
    db: &Database,
    stmt: Option<&SelectStatement>,
) -> Result<(), PlanError> {
    if cfg!(debug_assertions) {
        verify(plan, db, stmt).map(|_| ())
    } else {
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Per-node checks
// ---------------------------------------------------------------------------

fn check_node(
    node: &PlanNode,
    db: &Database,
    out: &mut Vec<Option<NodeProps>>,
) -> Result<NodeProps, PlanError> {
    let mut child_props: Vec<NodeProps> = Vec::with_capacity(node.children.len());
    for c in &node.children {
        child_props.push(check_node(c, db, out)?);
    }
    check_structure(node, db)?;
    let refs: Vec<&NodeProps> = child_props.iter().collect();
    let props = infer(node, &refs, db);
    check_semantics(node, &refs, &props, db)?;
    if let Some(slot) = out.get_mut(node.id) {
        *slot = Some(props.clone());
    }
    Ok(props)
}

/// Shape checks that need no inferred properties: child arity, index
/// resolution, and layout consistency with the operator and children.
fn check_structure(node: &PlanNode, db: &Database) -> Result<(), PlanError> {
    let err = |kind, detail: String| Err(PlanError::new(kind, node.id, detail));
    let want_children = match node.op {
        PlanOp::Scan { .. } => 0,
        PlanOp::HashJoin { .. } | PlanOp::CrossJoin => 2,
        _ => 1,
    };
    if node.children.len() != want_children {
        return err(
            PlanErrorKind::SchemaMismatch,
            format!("operator expects {want_children} input(s), has {}", node.children.len()),
        );
    }
    let check_pred_indices = |preds: &[PhysPred], arity: usize| -> Result<(), PlanError> {
        for p in preds {
            let idxs: Vec<usize> = match p {
                PhysPred::EqCols(l, r) => vec![*l, *r],
                PhysPred::ContainsCi(i, _) | PhysPred::EqLit(i, _) => vec![*i],
            };
            for i in idxs {
                if i >= arity {
                    return Err(PlanError::new(
                        PlanErrorKind::UnresolvedColumn,
                        node.id,
                        format!("predicate column #{i} out of range (arity {arity})"),
                    ));
                }
            }
        }
        Ok(())
    };
    match &node.op {
        PlanOp::Scan { relation, alias, pushed } => {
            let Some(table) = db.table(relation) else {
                return err(PlanErrorKind::Catalog, format!("unknown relation `{relation}`"));
            };
            let want: Vec<(String, String)> = table
                .schema
                .attrs
                .iter()
                .map(|a| (alias.to_lowercase(), a.name.to_lowercase()))
                .collect();
            if node.cols != want {
                return err(
                    PlanErrorKind::SchemaMismatch,
                    format!("scan layout {:?} does not match `{relation}` schema", node.cols),
                );
            }
            check_pred_indices(pushed, node.cols.len())?;
        }
        PlanOp::DerivedTable { alias, names } => {
            let child = &node.children[0];
            if names.len() != child.cols.len() {
                return err(
                    PlanErrorKind::SchemaMismatch,
                    format!(
                        "derived table carries {} name(s) over a {}-column subplan",
                        names.len(),
                        child.cols.len()
                    ),
                );
            }
            let want: Vec<(String, String)> =
                names.iter().map(|n| (alias.to_lowercase(), n.to_lowercase())).collect();
            if node.cols != want {
                return err(
                    PlanErrorKind::SchemaMismatch,
                    "derived-table layout does not re-alias its captured names".to_string(),
                );
            }
        }
        PlanOp::HashJoin { left_keys, right_keys, .. } => {
            check_join_layout(node)?;
            if left_keys.is_empty() || left_keys.len() != right_keys.len() {
                return err(
                    PlanErrorKind::JoinKeyArity,
                    format!("{} left vs {} right key(s)", left_keys.len(), right_keys.len()),
                );
            }
            let (la, ra) = (node.children[0].cols.len(), node.children[1].cols.len());
            for (&l, &r) in left_keys.iter().zip(right_keys) {
                if l >= la || r >= ra {
                    return err(
                        PlanErrorKind::UnresolvedColumn,
                        format!("join key ({l}, {r}) out of range (arities {la}, {ra})"),
                    );
                }
            }
        }
        PlanOp::CrossJoin => check_join_layout(node)?,
        PlanOp::Filter { preds } => {
            check_passthrough_layout(node)?;
            check_pred_indices(preds, node.children[0].cols.len())?;
        }
        PlanOp::HashAggregate { group, items, names } => {
            if items.len() != names.len() {
                return err(
                    PlanErrorKind::SchemaMismatch,
                    format!("{} item(s) but {} name(s)", items.len(), names.len()),
                );
            }
            check_output_layout(node, names)?;
            let arity = node.children[0].cols.len();
            for &g in group {
                if g >= arity {
                    return err(
                        PlanErrorKind::UnresolvedColumn,
                        format!("group key #{g} out of range (arity {arity})"),
                    );
                }
            }
            for item in items {
                let i = match item {
                    PhysAggItem::Col(i) => *i,
                    PhysAggItem::Agg { arg, .. } => *arg,
                };
                if i >= arity {
                    return err(
                        PlanErrorKind::UnresolvedColumn,
                        format!("aggregate input #{i} out of range (arity {arity})"),
                    );
                }
            }
        }
        PlanOp::Project { cols, names } => {
            if cols.len() != names.len() {
                return err(
                    PlanErrorKind::SchemaMismatch,
                    format!("{} column(s) but {} name(s)", cols.len(), names.len()),
                );
            }
            check_output_layout(node, names)?;
            let arity = node.children[0].cols.len();
            for &i in cols {
                if i >= arity {
                    return err(
                        PlanErrorKind::UnresolvedColumn,
                        format!("projected column #{i} out of range (arity {arity})"),
                    );
                }
            }
        }
        PlanOp::Distinct | PlanOp::Limit { .. } => check_passthrough_layout(node)?,
        PlanOp::Sort { keys } => {
            check_passthrough_layout(node)?;
            let arity = node.cols.len();
            for &(i, _) in keys {
                if i >= arity {
                    return err(
                        PlanErrorKind::UnresolvedColumn,
                        format!("sort key #{i} out of range (arity {arity})"),
                    );
                }
            }
        }
    }
    // output_names() must stay parallel to the layout everywhere (the
    // derived-table aliasing drift the verifier exists to catch).
    let names = node.output_names();
    if names.len() != node.cols.len()
        || names.iter().zip(&node.cols).any(|(n, (_, c))| !n.eq_ignore_ascii_case(c))
    {
        return err(
            PlanErrorKind::SchemaMismatch,
            format!("output names {names:?} not parallel to layout {:?}", node.cols),
        );
    }
    Ok(())
}

fn check_join_layout(node: &PlanNode) -> Result<(), PlanError> {
    let mut want = node.children[0].cols.clone();
    want.extend(node.children[1].cols.iter().cloned());
    if node.cols != want {
        return Err(PlanError::new(
            PlanErrorKind::SchemaMismatch,
            node.id,
            "join layout is not left ++ right".to_string(),
        ));
    }
    Ok(())
}

fn check_passthrough_layout(node: &PlanNode) -> Result<(), PlanError> {
    if node.cols != node.children[0].cols {
        return Err(PlanError::new(
            PlanErrorKind::SchemaMismatch,
            node.id,
            "pass-through operator changed its input layout".to_string(),
        ));
    }
    Ok(())
}

fn check_output_layout(node: &PlanNode, names: &[String]) -> Result<(), PlanError> {
    let want: Vec<(String, String)> =
        names.iter().map(|n| (String::new(), n.to_lowercase())).collect();
    if node.cols != want {
        return Err(PlanError::new(
            PlanErrorKind::SchemaMismatch,
            node.id,
            "output layout does not match declared names".to_string(),
        ));
    }
    Ok(())
}

/// Checks that need inferred properties: types, provenance, build side,
/// aggregate safety, and cardinality bounds.
fn check_semantics(
    node: &PlanNode,
    children: &[&NodeProps],
    props: &NodeProps,
    db: &Database,
) -> Result<(), PlanError> {
    match &node.op {
        PlanOp::Scan { pushed, .. } => check_pred_types(node.id, pushed, &props.cols)?,
        PlanOp::Filter { preds } => check_pred_types(node.id, preds, &children[0].cols)?,
        PlanOp::HashJoin { left_keys, right_keys, build_left } => {
            let (l, r) = (children[0], children[1]);
            for (&lk, &rk) in left_keys.iter().zip(right_keys) {
                let (lc, rc) = (&l.cols[lk], &r.cols[rk]);
                if let (Some(lt), Some(rt)) = (lc.ty, rc.ty) {
                    if !types_compatible(lt, rt) {
                        return Err(PlanError::new(
                            PlanErrorKind::JoinKeyType,
                            node.id,
                            format!(
                                "{} ({}) joined with {} ({})",
                                lc.token(),
                                lt.name(),
                                rc.token(),
                                rt.name()
                            ),
                        ));
                    }
                }
                check_join_provenance(node.id, lc, rc, db)?;
            }
            let smaller_left = node.children[0].est_rows < node.children[1].est_rows;
            if *build_left != smaller_left {
                return Err(PlanError::new(
                    PlanErrorKind::BuildSide,
                    node.id,
                    format!(
                        "build side is {} but estimates are {} vs {}",
                        if *build_left { "left" } else { "right" },
                        node.children[0].est_rows,
                        node.children[1].est_rows
                    ),
                ));
            }
        }
        PlanOp::HashAggregate { group, items, .. } => {
            check_aggregate(node, group, items, children[0], db)?;
        }
        _ => {}
    }
    if node.est_rows > props.max_rows {
        return Err(PlanError::new(
            PlanErrorKind::CardinalityBound,
            node.id,
            format!("estimate {} exceeds provable bound {}", node.est_rows, props.max_rows),
        ));
    }
    Ok(())
}

fn check_pred_types(id: usize, preds: &[PhysPred], cols: &[ColProp]) -> Result<(), PlanError> {
    for p in preds {
        match p {
            PhysPred::EqCols(l, r) => {
                if let (Some(lt), Some(rt)) = (cols[*l].ty, cols[*r].ty) {
                    if !types_compatible(lt, rt) {
                        return Err(PlanError::new(
                            PlanErrorKind::PredType,
                            id,
                            format!(
                                "{} ({}) equated with {} ({})",
                                cols[*l].token(),
                                lt.name(),
                                cols[*r].token(),
                                rt.name()
                            ),
                        ));
                    }
                }
            }
            PhysPred::ContainsCi(i, _) => {
                if let Some(ty @ (AttrType::Int | AttrType::Float)) = cols[*i].ty {
                    return Err(PlanError::new(
                        PlanErrorKind::PredType,
                        id,
                        format!(
                            "contains over numeric column {} ({})",
                            cols[*i].token(),
                            ty.name()
                        ),
                    ));
                }
            }
            PhysPred::EqLit(i, v) => {
                if let Some(ty) = cols[*i].ty {
                    if !literal_compatible(v, ty) {
                        return Err(PlanError::new(
                            PlanErrorKind::PredType,
                            id,
                            format!(
                                "literal {v} compared with {} ({})",
                                cols[*i].token(),
                                ty.name()
                            ),
                        ));
                    }
                }
            }
        }
    }
    Ok(())
}

fn types_compatible(a: AttrType, b: AttrType) -> bool {
    let numeric = |t| matches!(t, AttrType::Int | AttrType::Float);
    a == b || (numeric(a) && numeric(b))
}

fn literal_compatible(v: &Value, ty: AttrType) -> bool {
    match v {
        Value::Null => true,
        Value::Int(_) | Value::Float(_) => matches!(ty, AttrType::Int | AttrType::Float),
        Value::Str(_) => ty == AttrType::Text,
        Value::Date(_) => ty == AttrType::Date,
    }
}

/// A join key pair must come from the same base attribute (natural
/// unification) or follow a declared foreign key; aggregate outputs and
/// other provenance-free columns are exempt.
fn check_join_provenance(
    id: usize,
    l: &ColProp,
    r: &ColProp,
    db: &Database,
) -> Result<(), PlanError> {
    let (Some((lrel, lattr)), Some((rrel, rattr))) = (&l.base, &r.base) else {
        return Ok(());
    };
    if lattr == rattr
        || fk_links(lrel, lattr, rrel, rattr, db)
        || fk_links(rrel, rattr, lrel, lattr, db)
    {
        return Ok(());
    }
    Err(PlanError::new(
        PlanErrorKind::JoinProvenance,
        id,
        format!(
            "{} ({lrel}.{lattr}) joined with {} ({rrel}.{rattr}): no shared attribute or foreign key",
            l.token(),
            r.token()
        ),
    ))
}

fn fk_links(rel: &str, attr: &str, ref_rel: &str, ref_attr: &str, db: &Database) -> bool {
    let Some(table) = db.table(rel) else { return false };
    table.schema.foreign_keys.iter().any(|fk| {
        fk.ref_relation.eq_ignore_ascii_case(ref_rel)
            && fk
                .attrs
                .iter()
                .zip(&fk.ref_attrs)
                .any(|(a, ra)| a.eq_ignore_ascii_case(attr) && ra.eq_ignore_ascii_case(ref_attr))
    })
}

// ---------------------------------------------------------------------------
// Aggregate safety (the physical-level AQ-P4/P5 analogues)
// ---------------------------------------------------------------------------

fn check_aggregate(
    node: &PlanNode,
    group: &[usize],
    items: &[PhysAggItem],
    input: &NodeProps,
    db: &Database,
) -> Result<(), PlanError> {
    // P2 analogue: SUM/AVG need numeric arguments.
    for item in items {
        if let PhysAggItem::Agg { func: func @ (AggFunc::Sum | AggFunc::Avg), arg, .. } = item {
            if let Some(ty @ (AttrType::Text | AttrType::Date)) = input.cols[*arg].ty {
                return Err(PlanError::new(
                    PlanErrorKind::AggType,
                    node.id,
                    format!(
                        "{}({}) over non-numeric type {}",
                        func.keyword(),
                        input.cols[*arg].token(),
                        ty.name()
                    ),
                ));
            }
        }
    }
    // P4 analogue: a plain output column must be a group key or be
    // functionally determined by the group keys (group-constant).
    let group_tokens: BTreeSet<String> = group.iter().map(|&g| input.cols[g].token()).collect();
    let closure = input.fds.closure(group_tokens.clone());
    for item in items {
        if let PhysAggItem::Col(i) = item {
            let token = input.cols[*i].token();
            if !group.contains(i) && !closure.contains(&token) {
                return Err(PlanError::new(
                    PlanErrorKind::UngroupedColumn,
                    node.id,
                    format!("plain output {token} is neither grouped nor group-determined"),
                ));
            }
        }
    }

    // P5 analogue. Mirrors `aqks_analyze`'s DuplicateInflation pass over
    // the aggregate's own FROM level: base scans reached without crossing
    // a DerivedTable boundary (inner levels are checked at their own
    // aggregates).
    let dup_sensitive = items.iter().any(|i| {
        matches!(
            i,
            PhysAggItem::Agg {
                func: AggFunc::Count | AggFunc::Sum | AggFunc::Avg,
                distinct: false,
                ..
            }
        )
    });
    if !dup_sensitive {
        return Ok(());
    }
    let input_node = &node.children[0];
    let mut scans: Vec<&PlanNode> = Vec::new();
    collect_scans(input_node, &mut scans);
    let mut used: HashMap<String, BTreeSet<String>> = HashMap::new();
    collect_used(input_node, &mut used);
    for &i in group {
        mark_used(&input_node.cols, i, &mut used);
    }
    for item in items {
        let i = match item {
            PhysAggItem::Col(i) => *i,
            PhysAggItem::Agg { arg, .. } => *arg,
        };
        mark_used(&input_node.cols, i, &mut used);
    }
    let contains_matched = collect_contains(input_node);

    for scan in &scans {
        let PlanOp::Scan { relation, alias, .. } = &scan.op else { continue };
        let Some(table) = db.table(relation) else { continue };
        let fds = lower_fd_set(&table.schema);
        let pinned = pinned_for(&closure, alias);
        let empty = BTreeSet::new();
        let used_a = used.get(alias.as_str()).unwrap_or(&empty);
        // Redundant rows: a declared non-key FD whose determinant covers
        // every used column of this relation, while the determinant plus
        // everything the group keys pin still does not identify a row —
        // logically-duplicate rows then multiply the aggregate.
        for fd in &fds.fds {
            if fds.is_superkey(&fd.lhs) {
                continue;
            }
            if !used_a.is_subset(&fds.closure(fd.lhs.clone())) {
                continue;
            }
            let mut pinned_k = fd.lhs.clone();
            pinned_k.extend(pinned.iter().cloned());
            if !fds.is_superkey(&pinned_k) {
                return Err(PlanError::new(
                    PlanErrorKind::DuplicateRisk,
                    node.id,
                    format!(
                        "duplicate-sensitive aggregate over `{relation}` AS {alias}: rows \
                         duplicated along {fd} are not keyed by the group"
                    ),
                ));
            }
        }
        // Merged groups: grouping on a contains-matched column of a
        // relation whose rows the pinned columns do not identify merges
        // distinct entities that share the matched text.
        for &g in group {
            let Some((ga, gc)) = input_node.cols.get(g) else { continue };
            if ga == alias
                && contains_matched.contains(&(ga.clone(), gc.clone()))
                && !fds.is_superkey(&pinned)
            {
                return Err(PlanError::new(
                    PlanErrorKind::MergedGroups,
                    node.id,
                    format!(
                        "group key {ga}.{gc} is contains-matched but does not identify \
                         `{relation}` rows"
                    ),
                ));
            }
        }
    }
    Ok(())
}

/// Base scans of one FROM level (stops at DerivedTable boundaries).
fn collect_scans<'a>(node: &'a PlanNode, out: &mut Vec<&'a PlanNode>) {
    match &node.op {
        PlanOp::DerivedTable { .. } => {}
        PlanOp::Scan { .. } => out.push(node),
        _ => {
            for c in &node.children {
                collect_scans(c, out);
            }
        }
    }
}

fn mark_used(cols: &[(String, String)], i: usize, used: &mut HashMap<String, BTreeSet<String>>) {
    if let Some((a, c)) = cols.get(i) {
        used.entry(a.clone()).or_default().insert(c.clone());
    }
}

/// Columns referenced by predicates and join keys within one FROM level.
fn collect_used(node: &PlanNode, used: &mut HashMap<String, BTreeSet<String>>) {
    let mark_preds = |preds: &[PhysPred],
                      cols: &[(String, String)],
                      used: &mut HashMap<String, BTreeSet<String>>| {
        for p in preds {
            match p {
                PhysPred::EqCols(l, r) => {
                    mark_used(cols, *l, used);
                    mark_used(cols, *r, used);
                }
                PhysPred::ContainsCi(i, _) | PhysPred::EqLit(i, _) => mark_used(cols, *i, used),
            }
        }
    };
    match &node.op {
        PlanOp::DerivedTable { .. } => return,
        PlanOp::Scan { pushed, .. } => mark_preds(pushed, &node.cols, used),
        PlanOp::Filter { preds } => mark_preds(preds, &node.cols, used),
        PlanOp::HashJoin { left_keys, right_keys, .. } => {
            for &l in left_keys {
                mark_used(&node.children[0].cols, l, used);
            }
            for &r in right_keys {
                mark_used(&node.children[1].cols, r, used);
            }
        }
        _ => {}
    }
    for c in &node.children {
        collect_used(c, used);
    }
}

/// `(alias, column)` pairs matched by a `contains` predicate within one
/// FROM level.
fn collect_contains(node: &PlanNode) -> BTreeSet<(String, String)> {
    let mut out = BTreeSet::new();
    fn go(node: &PlanNode, out: &mut BTreeSet<(String, String)>) {
        let mark = |preds: &[PhysPred],
                    cols: &[(String, String)],
                    out: &mut BTreeSet<(String, String)>| {
            for p in preds {
                if let PhysPred::ContainsCi(i, _) = p {
                    if let Some((a, c)) = cols.get(*i) {
                        out.insert((a.clone(), c.clone()));
                    }
                }
            }
        };
        match &node.op {
            PlanOp::DerivedTable { .. } => return,
            PlanOp::Scan { pushed, .. } => mark(pushed, &node.cols, out),
            PlanOp::Filter { preds } => mark(preds, &node.cols, out),
            _ => {}
        }
        for c in &node.children {
            go(c, out);
        }
    }
    go(node, &mut out);
    out
}

/// Columns of `alias` in a token closure (the plan-level analogue of
/// `aqks_analyze::fdmodel::pinned_for`).
fn pinned_for(closure: &BTreeSet<String>, alias: &str) -> BTreeSet<String> {
    let prefix = format!("{alias}.");
    closure.iter().filter_map(|t| t.strip_prefix(&prefix)).map(str::to_string).collect()
}

// ---------------------------------------------------------------------------
// Statement correspondence
// ---------------------------------------------------------------------------

/// Checks that the plan realizes the statement's required shape:
/// LIMIT/ORDER BY/DISTINCT present exactly when requested, the output
/// schema matching the rendered SQL's select list, and every FROM item
/// (recursively through derived tables) realized by a matching source.
fn check_stmt(root: &PlanNode, stmt: &SelectStatement) -> Result<(), PlanError> {
    let mut cur = root;
    match (&cur.op, stmt.limit) {
        (PlanOp::Limit { n }, Some(want)) if *n == want => cur = &cur.children[0],
        (PlanOp::Limit { n }, want) => {
            return Err(PlanError::new(
                PlanErrorKind::LimitMismatch,
                cur.id,
                format!("plan limits to {n}, statement wants {want:?}"),
            ));
        }
        (_, Some(want)) => {
            return Err(PlanError::new(
                PlanErrorKind::LimitMismatch,
                cur.id,
                format!("statement has LIMIT {want} but the plan root does not limit"),
            ));
        }
        (_, None) => {}
    }
    match (&cur.op, stmt.order_by.is_empty()) {
        (PlanOp::Sort { keys }, false) => {
            let agree = keys.len() == stmt.order_by.len()
                && keys.iter().zip(&stmt.order_by).all(|(&(_, desc), k)| desc == k.desc);
            if !agree {
                return Err(PlanError::new(
                    PlanErrorKind::OrderMismatch,
                    cur.id,
                    format!("sort keys {keys:?} do not realize the statement's ORDER BY"),
                ));
            }
            cur = &cur.children[0];
        }
        (PlanOp::Sort { .. }, true) => {
            return Err(PlanError::new(
                PlanErrorKind::OrderMismatch,
                cur.id,
                "plan sorts but the statement has no ORDER BY".to_string(),
            ));
        }
        (_, false) => {
            return Err(PlanError::new(
                PlanErrorKind::OrderMismatch,
                cur.id,
                "statement has ORDER BY but the plan root is unordered".to_string(),
            ));
        }
        (_, true) => {}
    }
    match (&cur.op, stmt.distinct) {
        (PlanOp::Distinct, true) => cur = &cur.children[0],
        (PlanOp::Distinct, false) => {
            return Err(PlanError::new(
                PlanErrorKind::LostDistinct,
                cur.id,
                "plan deduplicates but the statement is not SELECT DISTINCT".to_string(),
            ));
        }
        (_, true) => {
            return Err(PlanError::new(
                PlanErrorKind::LostDistinct,
                cur.id,
                "SELECT DISTINCT but no Distinct operator above the projection".to_string(),
            ));
        }
        (_, false) => {}
    }

    let want_names: Vec<&str> = stmt.items.iter().map(SelectItem::output_name).collect();
    let grouped = stmt.has_aggregate() || !stmt.group_by.is_empty();
    match &cur.op {
        PlanOp::HashAggregate { group, items, names } if grouped => {
            if group.len() != stmt.group_by.len() {
                return Err(PlanError::new(
                    PlanErrorKind::OutputSchema,
                    cur.id,
                    format!(
                        "plan groups by {} key(s), statement by {}",
                        group.len(),
                        stmt.group_by.len()
                    ),
                ));
            }
            check_names(cur.id, names, &want_names)?;
            for (item, want) in items.iter().zip(&stmt.items) {
                let ok = match (item, want) {
                    (PhysAggItem::Col(_), SelectItem::Column { .. }) => true,
                    (
                        PhysAggItem::Agg { func, distinct, .. },
                        SelectItem::Aggregate { func: wf, distinct: wd, .. },
                    ) => func == wf && distinct == wd,
                    _ => false,
                };
                if !ok {
                    return Err(PlanError::new(
                        PlanErrorKind::OutputSchema,
                        cur.id,
                        "aggregate items do not realize the statement's select list".to_string(),
                    ));
                }
            }
        }
        PlanOp::Project { names, .. } if !grouped => check_names(cur.id, names, &want_names)?,
        _ => {
            return Err(PlanError::new(
                PlanErrorKind::OutputSchema,
                cur.id,
                format!(
                    "expected {} at the statement's output, found `{}`",
                    if grouped { "HashAggregate" } else { "Project" },
                    cur.label()
                ),
            ));
        }
    }

    // FROM items: every base relation has its scan, every derived table
    // its recursively checked subplan.
    let region = &cur.children[0];
    for item in &stmt.from {
        match item {
            TableExpr::Relation { name, alias } => {
                let found = find_source(region, &alias.to_lowercase()).is_some_and(|n| {
                    matches!(&n.op, PlanOp::Scan { relation, .. }
                        if relation.eq_ignore_ascii_case(name))
                });
                if !found {
                    return Err(PlanError::new(
                        PlanErrorKind::SchemaMismatch,
                        cur.id,
                        format!("no scan of `{name}` AS {alias} realizes the FROM item"),
                    ));
                }
            }
            TableExpr::Derived { query, alias } => {
                let Some(node) = find_source(region, &alias.to_lowercase()) else {
                    return Err(PlanError::new(
                        PlanErrorKind::SchemaMismatch,
                        cur.id,
                        format!("no derived table AS {alias} realizes the FROM item"),
                    ));
                };
                if !matches!(node.op, PlanOp::DerivedTable { .. }) {
                    return Err(PlanError::new(
                        PlanErrorKind::SchemaMismatch,
                        node.id,
                        format!("FROM item {alias} is derived but the plan scans a relation"),
                    ));
                }
                check_stmt(&node.children[0], query)?;
            }
        }
    }
    Ok(())
}

fn check_names(id: usize, got: &[String], want: &[&str]) -> Result<(), PlanError> {
    if got.len() != want.len() || got.iter().zip(want).any(|(g, w)| !g.eq_ignore_ascii_case(w)) {
        return Err(PlanError::new(
            PlanErrorKind::OutputSchema,
            id,
            format!("plan outputs {got:?}, rendered SQL selects {want:?}"),
        ));
    }
    Ok(())
}

/// The source node (Scan or DerivedTable) with the given alias in one
/// FROM level.
fn find_source<'a>(node: &'a PlanNode, alias: &str) -> Option<&'a PlanNode> {
    match &node.op {
        PlanOp::Scan { alias: a, .. } | PlanOp::DerivedTable { alias: a, .. } => {
            (a == alias).then_some(node)
        }
        _ => node.children.iter().find_map(|c| find_source(c, alias)),
    }
}

// ---------------------------------------------------------------------------
// Annotated EXPLAIN rendering
// ---------------------------------------------------------------------------

/// Pretty-prints the plan tree with each operator's inferred properties
/// (`aqks explain`'s property view).
pub fn render_verified(plan: &PlanNode, verified: &Verified) -> String {
    let mut out = String::new();
    fn go(
        node: &PlanNode,
        verified: &Verified,
        prefix: &str,
        last: bool,
        root: bool,
        out: &mut String,
    ) {
        let (branch, child_prefix) = if root {
            (String::new(), String::new())
        } else if last {
            (format!("{prefix}└─ "), format!("{prefix}   "))
        } else {
            (format!("{prefix}├─ "), format!("{prefix}│  "))
        };
        out.push_str(&branch);
        out.push_str(&node.label());
        out.push_str(&format!(" (est={})", node.est_rows));
        if let Some(p) = verified.props(node.id) {
            out.push_str(&format!(" {{{}}}", p.summary(&node.output_names())));
        }
        out.push('\n');
        let n = node.children.len();
        for (i, c) in node.children.iter().enumerate() {
            go(c, verified, &child_prefix, i + 1 == n, false, out);
        }
    }
    go(plan, verified, "", true, true, &mut out);
    out
}
