#![cfg_attr(not(test), warn(clippy::unwrap_used))]

//! `repro` — regenerates every evaluation table and figure of the paper.
//!
//! ```text
//! repro table5|table6|table8|table9|fig11|plans|all [--paper-scale] [--reps N]
//! repro exec-bench [--smoke] [--out FILE] [--reps N] [--threads N]
//! repro equiv-bench [--smoke] [--out FILE] [--k N]
//! repro obs-bench [--smoke] [--out FILE] [--reps N]
//! repro serve-bench [--smoke] [--out FILE] [--clients N] [--requests N] [--workers N] [--chaos]
//! repro faults       # fault-injection sweep; needs --features failpoints
//! ```
//!
//! `plans` runs the static plan-verification sweep: every interpretation
//! of every bundled workload query is planned, verified with
//! `aqks-plancheck`, and fingerprinted. Exits non-zero on any rejection.
//!
//! `exec-bench` plans and executes the T1–T8 / A1–A8 workloads through
//! the physical-operator pipeline and writes per-query and per-operator
//! timings to `BENCH_exec.json` (override with `--out`); `--smoke` uses
//! 3 repetitions for a fast CI regression check. `--threads N` (N > 1)
//! additionally sweeps the TPC-H' aggregate workload over power-of-two
//! executor thread counts up to N, verifies every thread count produces
//! byte-identical stabilized results, and records the scaling under
//! `threads_sweep` in the JSON. Exits non-zero if any workload query
//! fails to plan or execute, or if any thread count diverges.
//!
//! `equiv-bench` plans the top-k interpretations of every workload query
//! (with and without predicate pushdown), partitions the plans into
//! semantic equivalence classes with `aqks-equiv`, executes the
//! deduplicated shared-subplan set, and writes the class/sharing/rows
//! statistics to `BENCH_equiv.json` (override with `--out`). Exits
//! non-zero on any planning or differential-execution failure, when the
//! multi-interpretation TPC-H' workload yields no nontrivial
//! equivalence class, or when shared execution fails to move fewer rows
//! than the per-plan baseline.
//!
//! `obs-bench` answers the TPC-H' aggregate workload with the always-on
//! metrics registry disabled and enabled (interleaved A/B repetitions)
//! and writes the per-query and median overhead to `BENCH_obs.json`.
//! Exits non-zero when the median overhead exceeds 3% (5% under
//! `--smoke`, whose short runs are noisier) or when the disabled
//! recording path allocates — this binary installs a counting global
//! allocator so the zero-allocation contract is checked for real.
//!
//! `serve-bench` starts the `aqks-server` query service in-process and
//! drives it with `--clients` closed-loop threads issuing `--requests`
//! Zipf-mixed queries each against `--workers` server workers, writing
//! throughput, exact p50/p99 latency, and shed rate to
//! `BENCH_serve.json`. The load is trivial by construction, so the run
//! *fails* on any protocol error or nonzero shed count — admission
//! control firing at this load means the service regressed. `--chaos`
//! (failpoints builds) additionally arms each server-side failpoint and
//! verifies every injected fault surfaces as a typed wire error while
//! the server keeps serving.

use aqks_eval::{execbench, fig11, obsbench, tables, Scale};

/// Global allocator that feeds the `obs-bench` allocation probe: one
/// relaxed atomic load per allocation while the probe is disarmed —
/// unmeasurable next to the allocation itself.
struct ProbeAlloc;

unsafe impl std::alloc::GlobalAlloc for ProbeAlloc {
    unsafe fn alloc(&self, layout: std::alloc::Layout) -> *mut u8 {
        obsbench::probe_alloc();
        unsafe { std::alloc::System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: std::alloc::Layout) {
        unsafe { std::alloc::System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static GLOBAL: ProbeAlloc = ProbeAlloc;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = if args.iter().any(|a| a == "--paper-scale") { Scale::Paper } else { Scale::Small };
    let mut reps = 21usize;
    let mut k = 3usize;
    let mut threads = 1usize;
    let mut smoke = false;
    let mut chaos = false;
    let mut clients = 4usize;
    let mut requests = 50usize;
    let mut workers = 4usize;
    let mut out_file: Option<String> = None;
    let mut what = "all".to_string();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--paper-scale" => {}
            "--smoke" => smoke = true,
            "--chaos" => chaos = true,
            "--clients" => {
                i += 1;
                clients = args.get(i).and_then(|v| v.parse().ok()).unwrap_or(4);
            }
            "--requests" => {
                i += 1;
                requests = args.get(i).and_then(|v| v.parse().ok()).unwrap_or(50);
            }
            "--workers" => {
                i += 1;
                workers = args.get(i).and_then(|v| v.parse().ok()).unwrap_or(4);
            }
            "--out" => {
                i += 1;
                out_file = match args.get(i) {
                    Some(v) => Some(v.to_string()),
                    None => {
                        eprintln!("--out needs a file name");
                        std::process::exit(2);
                    }
                };
            }
            "--reps" => {
                i += 1;
                reps = args.get(i).and_then(|v| v.parse().ok()).unwrap_or(21);
            }
            "--k" => {
                i += 1;
                k = args.get(i).and_then(|v| v.parse().ok()).unwrap_or(3);
            }
            "--threads" => {
                i += 1;
                threads = args.get(i).and_then(|v| v.parse().ok()).unwrap_or(1);
            }
            other if !other.starts_with("--") => what = other.to_string(),
            other => {
                eprintln!("unknown flag `{other}`");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    if smoke {
        reps = reps.min(3);
    }

    if what == "faults" {
        #[cfg(feature = "failpoints")]
        {
            let outcomes = aqks_eval::faults::run_fault_sweep();
            let (report, ok) = aqks_eval::faults::render(&outcomes);
            print!("{report}");
            if !ok {
                eprintln!("fault sweep failed");
                std::process::exit(1);
            }
            eprintln!("fault sweep passed: {} site(s)", outcomes.len());
            return;
        }
        #[cfg(not(feature = "failpoints"))]
        {
            eprintln!("`repro faults` needs the fault-injection build: cargo run -p aqks-eval --features failpoints --bin repro -- faults");
            std::process::exit(2);
        }
    }

    if what == "serve-bench" {
        if smoke {
            clients = clients.min(2);
            requests = requests.min(10);
        }
        let cfg =
            aqks_eval::servebench::LoadConfig { clients, requests_per_client: requests, workers };
        let bench = aqks_eval::servebench::run_serve_bench(&cfg);
        eprintln!(
            "serve-bench: {} client(s) x {} request(s), {} worker(s): {:.1} req/s, p50 {:.0}µs, p99 {:.0}µs",
            bench.clients,
            bench.requests_per_client,
            bench.workers,
            bench.throughput_rps,
            bench.p50_us,
            bench.p99_us
        );
        eprintln!(
            "serve-bench: ok {}, degraded {}, server errors {}, protocol errors {}, shed rate {:.4}",
            bench.ok, bench.degraded, bench.server_errors, bench.protocol_errors, bench.shed_rate
        );
        let mut failed = false;
        if bench.protocol_errors > 0 {
            eprintln!("FAILED: {} protocol error(s) under trivial load", bench.protocol_errors);
            failed = true;
        }
        if bench.server_errors > 0 {
            eprintln!("FAILED: {} typed server error(s) under trivial load", bench.server_errors);
            failed = true;
        }
        if bench.stats.shed() > 0 {
            eprintln!(
                "FAILED: admission control shed {} request(s) at trivial load",
                bench.stats.shed()
            );
            failed = true;
        }
        let chaos_summary = if chaos {
            #[cfg(feature = "failpoints")]
            {
                let summary = aqks_eval::servebench::run_chaos_sweep();
                eprintln!(
                    "serve-bench chaos: {}/{} site(s) typed, {}/{} recovered",
                    summary.typed_errors, summary.sites, summary.recoveries, summary.sites
                );
                if !summary.passed() {
                    eprintln!("FAILED: chaos sweep");
                    failed = true;
                }
                Some(summary)
            }
            #[cfg(not(feature = "failpoints"))]
            {
                eprintln!("`--chaos` needs the fault-injection build: cargo run -p aqks-eval --features failpoints --bin repro -- serve-bench --chaos");
                std::process::exit(2);
            }
        } else {
            None
        };
        let out = out_file.unwrap_or_else(|| "BENCH_serve.json".to_string());
        let json = aqks_eval::servebench::render_json(&bench, chaos_summary.as_ref());
        if let Err(e) = std::fs::write(&out, &json) {
            eprintln!("cannot write {out}: {e}");
            std::process::exit(1);
        }
        eprintln!("wrote {out}");
        if failed {
            eprintln!("serve-bench failed");
            std::process::exit(1);
        }
        return;
    }

    if what == "equiv-bench" {
        let rows = aqks_eval::equivbench::run_equiv_bench(scale, k);
        let mut failed = false;
        for r in &rows {
            eprintln!(
                "{}: {} plan(s) -> {} class(es) ({} nontrivial, {} duplicate(s)), {} shared subtree(s), rows {} -> {} (saved {})",
                r.workload,
                r.plans,
                r.classes,
                r.nontrivial_classes,
                r.duplicates,
                r.shared_subtrees,
                r.baseline_rows,
                r.shared_rows,
                r.rows_saved()
            );
            for e in &r.errors {
                eprintln!("  FAILED: {e}");
                failed = true;
            }
        }
        // The dedup machinery must demonstrably pay for itself: the
        // multi-interpretation TPC-H' workload has to collapse at least
        // one pair of plans, and sharing has to move fewer rows
        // somewhere — silent no-ops would make the analysis decorative.
        if !rows.iter().any(|r| r.workload == "tpch-prime" && r.nontrivial_classes >= 1) {
            eprintln!("FAILED: no nontrivial equivalence class on tpch-prime");
            failed = true;
        }
        if !rows.iter().any(|r| r.shared_subtrees >= 1 && r.shared_rows < r.baseline_rows) {
            eprintln!("FAILED: no workload saved rows through shared execution");
            failed = true;
        }
        let out = out_file.unwrap_or_else(|| "BENCH_equiv.json".to_string());
        let json = aqks_eval::equivbench::render_json(&rows, scale, k);
        if let Err(e) = std::fs::write(&out, &json) {
            eprintln!("cannot write {out}: {e}");
            std::process::exit(1);
        }
        eprintln!("wrote {out} ({} workloads)", rows.len());
        if failed {
            eprintln!("equiv-bench failed");
            std::process::exit(1);
        }
        return;
    }

    if what == "obs-bench" {
        let bench = obsbench::run_obs_bench(reps);
        let mut failed = false;
        for r in &bench.rows {
            match &r.error {
                Some(e) => {
                    eprintln!("tpch-prime/{}: FAILED: {e}", r.id);
                    failed = true;
                }
                None => eprintln!(
                    "tpch-prime/{}: disabled {:.0}µs, enabled {:.0}µs ({:+.2}%)",
                    r.id, r.disabled.median_us, r.enabled.median_us, r.overhead_pct
                ),
            }
        }
        // Short smoke runs are noisier; the full run holds the paper
        // contract of < 3% median overhead.
        let cap = if smoke { 5.0 } else { 3.0 };
        eprintln!(
            "obs-bench: median overhead {:+.2}% (cap {cap}%), flight retained {}",
            bench.median_overhead_pct, bench.flight_retained
        );
        if bench.median_overhead_pct > cap {
            eprintln!(
                "FAILED: enabled-metrics overhead {:.2}% > {cap}%",
                bench.median_overhead_pct
            );
            failed = true;
        }
        match bench.disabled_path_allocations {
            Some(0) => eprintln!("obs-bench: disabled recording path allocated nothing"),
            Some(n) => {
                eprintln!("FAILED: disabled recording path allocated {n} time(s)");
                failed = true;
            }
            None => {
                eprintln!("FAILED: allocation probe not installed");
                failed = true;
            }
        }
        let out = out_file.unwrap_or_else(|| "BENCH_obs.json".to_string());
        let json = obsbench::render_json(&bench);
        if let Err(e) = std::fs::write(&out, &json) {
            eprintln!("cannot write {out}: {e}");
            std::process::exit(1);
        }
        eprintln!("wrote {out} ({} queries)", bench.rows.len());
        if failed {
            eprintln!("obs-bench failed");
            std::process::exit(1);
        }
        return;
    }

    if what == "exec-bench" {
        let rows = execbench::run_exec_bench(scale, reps);
        let failures: Vec<&execbench::QueryExecBench> =
            rows.iter().filter(|r| r.error.is_some()).collect();
        for r in &rows {
            match &r.error {
                Some(e) => eprintln!("{}/{}: FAILED: {e}", r.workload, r.id),
                None => eprintln!(
                    "{}/{}: {:.1}/{:.1}/{:.1} µs (min/med/p95), {} row(s), {} operator(s)",
                    r.workload,
                    r.id,
                    r.wall.min_us,
                    r.wall.median_us,
                    r.wall.p95_us,
                    r.result_rows,
                    r.ops.len()
                ),
            }
        }
        let mut sweep_failed = false;
        let sweep = (threads > 1).then(|| {
            let sweep = execbench::run_thread_sweep(threads, reps);
            for r in &sweep.rows {
                match &r.error {
                    Some(e) => {
                        eprintln!("tpch-prime/{}: SWEEP FAILED: {e}", r.id);
                        sweep_failed = true;
                    }
                    None => {
                        let walls: Vec<String> = r
                            .points
                            .iter()
                            .map(|p| format!("{}t={:.0}µs", p.threads, p.wall.median_us))
                            .collect();
                        eprintln!(
                            "tpch-prime/{}: {} (speedup x{:.2}, {} row(s))",
                            r.id,
                            walls.join(" "),
                            r.speedup,
                            r.result_rows
                        );
                    }
                }
            }
            eprintln!(
                "threads sweep: median speedup x{:.2} at {} thread(s) ({} host cpu(s))",
                sweep.median_speedup, threads, sweep.host_cpus
            );
            sweep
        });
        let out = out_file.unwrap_or_else(|| "BENCH_exec.json".to_string());
        let json = execbench::render_json(&rows, scale, reps, sweep.as_ref());
        if let Err(e) = std::fs::write(&out, &json) {
            eprintln!("cannot write {out}: {e}");
            std::process::exit(1);
        }
        eprintln!("wrote {out} ({} queries)", rows.len());
        if !failures.is_empty() {
            eprintln!("exec-bench failed for {} quer(y/ies)", failures.len());
            std::process::exit(1);
        }
        if sweep_failed {
            eprintln!("exec-bench threads sweep failed");
            std::process::exit(1);
        }
        return;
    }

    let scale_name = match scale {
        Scale::Small => "small",
        Scale::Paper => "paper-scale",
    };
    eprintln!("# dataset scale: {scale_name}");

    let run_target = |name: &str| match name {
        "table5" => println!(
            "{}",
            tables::render_markdown(
                "Table 5: answers on normalized TPC-H (T1-T8)",
                &tables::run_table5(scale)
            )
        ),
        "table6" => println!(
            "{}",
            tables::render_markdown(
                "Table 6: answers on normalized ACMDL (A1-A8)",
                &tables::run_table6(scale)
            )
        ),
        "table8" => println!(
            "{}",
            tables::render_markdown(
                "Table 8: answers on unnormalized TPCH' (T1-T8)",
                &tables::run_table8(scale)
            )
        ),
        "table9" => println!(
            "{}",
            tables::render_markdown(
                "Table 9: answers on unnormalized ACMDL' (A1-A8)",
                &tables::run_table9(scale)
            )
        ),
        "fig11" => {
            let (tpch, acmdl) = fig11::run_fig11(scale, reps);
            println!(
                "{}",
                fig11::render_markdown("Figure 11(a): SQL generation time, TPCH", &tpch)
            );
            println!(
                "{}",
                fig11::render_markdown("Figure 11(b): SQL generation time, ACMDL", &acmdl)
            );
        }
        "plans" => {
            let sweeps = aqks_eval::plans::run_plan_sweep(scale, 3);
            println!("{}", aqks_eval::plans::render_markdown(&sweeps));
            let rejections: Vec<String> = sweeps
                .iter()
                .flat_map(|s| s.rejections().into_iter().map(|r| format!("{}: {r}", s.workload)))
                .collect();
            for r in &rejections {
                eprintln!("REJECTED {r}");
            }
            if !rejections.is_empty() {
                eprintln!("plan sweep failed: {} rejection(s)", rejections.len());
                std::process::exit(1);
            }
            let total: usize = sweeps.iter().map(|s| s.plans()).sum();
            eprintln!("plan sweep passed: {total} plan(s) verified clean");
        }
        other => {
            eprintln!("unknown target `{other}`; use table5|table6|table8|table9|fig11|plans|all");
            std::process::exit(2);
        }
    };

    if what == "all" {
        for t in ["table5", "table6", "table8", "table9", "fig11", "plans"] {
            run_target(t);
        }
    } else {
        run_target(&what);
    }
}
