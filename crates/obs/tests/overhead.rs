//! Disabled-recorder overhead: instrumentation with recording off must
//! not allocate. A counting global allocator wraps the system allocator;
//! only allocations made by the measuring thread are counted (the
//! libtest harness thread can allocate at any time and must not pollute
//! the count).

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};

use aqks_obs::Recorder;

struct CountingAlloc;

static ALLOCATIONS: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    // Const-initialized and destructor-free, so reading it inside the
    // allocator can neither allocate nor touch torn-down TLS.
    static TRACKING: Cell<bool> = const { Cell::new(false) };
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let _ = TRACKING.try_with(|t| {
            if t.get() {
                ALLOCATIONS.fetch_add(1, Ordering::SeqCst);
            }
        });
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

#[test]
fn disabled_spans_and_counters_do_not_allocate() {
    let rec = Recorder::disabled();
    // Warm the thread-local ambient stack and any lazy runtime state.
    {
        let s = rec.span("warmup");
        s.add("n", 1);
        aqks_obs::counter("warmup", 1);
        let _ = aqks_obs::current();
    }

    TRACKING.with(|t| t.set(true));
    let before = ALLOCATIONS.load(Ordering::SeqCst);
    for _ in 0..10_000 {
        let span = rec.span("phase");
        span.add("counter", 1);
        aqks_obs::counter("ambient", 1);
        let _ = span.handle();
        drop(span);
    }
    let after = ALLOCATIONS.load(Ordering::SeqCst);
    assert_eq!(after - before, 0, "disabled instrumentation allocated {} time(s)", after - before);

    // Sanity check that the counter itself works.
    let probe = vec![1u8, 2, 3];
    assert!(ALLOCATIONS.load(Ordering::SeqCst) > after, "allocator instrumented");
    drop(probe);
    TRACKING.with(|t| t.set(false));

    // And the same recorder records normally once enabled.
    rec.enable();
    {
        let _s = rec.span("live");
    }
    assert_eq!(rec.take().roots.len(), 1);
}
