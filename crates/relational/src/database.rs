//! A database: a set of named tables plus whole-database integrity checks.

use std::collections::HashSet;

use crate::error::{Error, Result};
use crate::schema::{DatabaseSchema, RelationSchema};
use crate::table::{Row, Table};
use crate::value::Value;

/// An in-memory relational database.
#[derive(Debug, Clone)]
pub struct Database {
    /// Human-readable database name (used in logs and dumps).
    pub name: String,
    tables: Vec<Table>,
}

impl Database {
    /// Creates an empty database.
    pub fn new(name: impl Into<String>) -> Self {
        Database { name: name.into(), tables: Vec::new() }
    }

    /// Adds a relation. The schema is validated in isolation here;
    /// cross-relation FK targets are validated by [`Database::validate`]
    /// once all relations are present.
    pub fn add_relation(&mut self, schema: RelationSchema) -> Result<()> {
        schema.validate()?;
        if self.table(&schema.name).is_some() {
            return Err(Error::DuplicateRelation(schema.name));
        }
        self.tables.push(Table::new(schema));
        Ok(())
    }

    /// The table for `relation` (case-insensitive), if any.
    pub fn table(&self, relation: &str) -> Option<&Table> {
        self.tables.iter().find(|t| t.schema.is_named(relation))
    }

    fn table_mut(&mut self, relation: &str) -> Option<&mut Table> {
        self.tables.iter_mut().find(|t| t.schema.is_named(relation))
    }

    /// All tables in declaration order.
    pub fn tables(&self) -> &[Table] {
        &self.tables
    }

    /// The database schema (cloned view over all relations).
    pub fn schema(&self) -> DatabaseSchema {
        DatabaseSchema { relations: self.tables.iter().map(|t| t.schema.clone()).collect() }
    }

    /// Inserts one tuple into `relation`.
    pub fn insert(&mut self, relation: &str, row: Row) -> Result<()> {
        self.table_mut(relation)
            .ok_or_else(|| Error::UnknownRelation(relation.to_string()))?
            .insert(row)
    }

    /// Inserts many tuples into `relation`.
    pub fn insert_all<I: IntoIterator<Item = Row>>(
        &mut self,
        relation: &str,
        rows: I,
    ) -> Result<()> {
        for row in rows {
            self.insert(relation, row)?;
        }
        Ok(())
    }

    /// Validates schema consistency and referential integrity of the data:
    /// every non-NULL foreign-key value must have a referenced tuple.
    pub fn validate(&self) -> Result<()> {
        self.schema().validate()?;
        for t in &self.tables {
            for fk in &t.schema.foreign_keys {
                let target = self
                    .table(&fk.ref_relation)
                    .ok_or_else(|| Error::UnknownRelation(fk.ref_relation.clone()))?;
                let ref_idx: Vec<usize> = fk
                    .ref_attrs
                    .iter()
                    .map(|a| target.schema.attr_index(a).expect("validated"))
                    .collect();
                let mut keys: HashSet<Vec<&Value>> = HashSet::with_capacity(target.len());
                for row in target.rows() {
                    keys.insert(ref_idx.iter().map(|&i| &row[i]).collect());
                }
                let src_idx: Vec<usize> =
                    fk.attrs.iter().map(|a| t.schema.attr_index(a).expect("validated")).collect();
                for row in t.rows() {
                    let key: Vec<&Value> = src_idx.iter().map(|&i| &row[i]).collect();
                    if key.iter().any(|v| v.is_null()) {
                        continue;
                    }
                    if !keys.contains(&key) {
                        return Err(Error::ForeignKeyViolation {
                            relation: t.schema.name.clone(),
                            fk: format!(
                                "({}) -> {}({})",
                                fk.attrs.join(", "),
                                fk.ref_relation,
                                fk.ref_attrs.join(", ")
                            ),
                        });
                    }
                }
            }
        }
        Ok(())
    }

    /// Total tuple count across all relations.
    pub fn total_rows(&self) -> usize {
        self.tables.iter().map(Table::len).sum()
    }

    /// Runs FD discovery ([`crate::discover`]) on every relation and
    /// declares each discovered dependency that the relation's current FD
    /// set does not already imply. Returns the number of FDs added.
    ///
    /// Discovered FDs are *instance-level*: they hold on the stored data
    /// and therefore keep the normalized view lossless for that data, but
    /// they may be accidental (see `discover::tests`). Intended for
    /// unnormalized databases whose schema declares no FDs.
    pub fn discover_and_declare_fds(&mut self, opts: &crate::discover::DiscoveryOptions) -> usize {
        let mut added = 0;
        for table in &mut self.tables {
            let discovered = crate::discover::discover_fds(table, opts);
            for fd in discovered {
                let current = table.schema.fd_set();
                if !current.implies(&fd.lhs, &fd.rhs) {
                    table.schema.extra_fds.push(fd);
                    added += 1;
                }
            }
        }
        added
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::AttrType;

    fn two_relation_db() -> Database {
        let mut db = Database::new("t");
        let mut s = RelationSchema::new("Student");
        s.add_attr("Sid", AttrType::Text).add_attr("Sname", AttrType::Text);
        s.set_primary_key(["Sid"]);
        db.add_relation(s).unwrap();
        let mut e = RelationSchema::new("Enrol");
        e.add_attr("Sid", AttrType::Text).add_attr("Code", AttrType::Text);
        e.set_primary_key(["Sid", "Code"]);
        e.add_foreign_key(["Sid"], "Student", ["Sid"]);
        db.add_relation(e).unwrap();
        db
    }

    #[test]
    fn fk_validation_catches_dangling_reference() {
        let mut db = two_relation_db();
        db.insert("Student", vec![Value::str("s1"), Value::str("George")]).unwrap();
        db.insert("Enrol", vec![Value::str("s1"), Value::str("c1")]).unwrap();
        assert!(db.validate().is_ok());
        db.insert("Enrol", vec![Value::str("s9"), Value::str("c1")]).unwrap();
        assert!(matches!(db.validate(), Err(Error::ForeignKeyViolation { .. })));
    }

    #[test]
    fn null_fk_values_are_allowed() {
        let mut db = two_relation_db();
        db.insert("Enrol", vec![Value::Null, Value::str("c1")]).unwrap();
        assert!(db.validate().is_ok());
    }

    #[test]
    fn duplicate_relation_rejected() {
        let mut db = two_relation_db();
        let err = db.add_relation(RelationSchema::new("student")).unwrap_err();
        assert!(matches!(err, Error::DuplicateRelation(_)));
    }

    #[test]
    fn insert_all_loads_batches() {
        let mut db = two_relation_db();
        db.insert_all(
            "Student",
            (1..=5).map(|i| vec![Value::str(format!("s{i}")), Value::str("X")]),
        )
        .unwrap();
        assert_eq!(db.table("Student").unwrap().len(), 5);
        // A failing row aborts mid-batch with the typed error.
        let err = db.insert_all("Student", vec![vec![Value::str("s9")], vec![]]).unwrap_err();
        assert!(matches!(err, Error::ArityMismatch { .. }));
    }

    #[test]
    fn unknown_relation_on_insert() {
        let mut db = two_relation_db();
        assert!(matches!(db.insert("Nope", vec![]), Err(Error::UnknownRelation(_))));
    }
}
