//! Relation classification into the four ORA kinds of reference \[16\].
//!
//! The decision uses only the declared primary key and foreign keys:
//!
//! | kind | rule |
//! |------|------|
//! | **Relationship** | the primary key is fully covered by the attributes of ≥ 2 foreign keys (an m:n — possibly n-ary — relationship, e.g. `Enrol`, `Teach`) |
//! | **Component** | a single foreign key whose attributes are contained in the primary key (a multivalued attribute of the referenced object/relationship, or a vertical partition) |
//! | **Mixed** | the relation has its own identifier *and* at least one foreign key — it stores objects together with many-to-one relationships (e.g. `Lecturer`, `Department`) |
//! | **Object** | its own identifier, no foreign keys (e.g. `Student`, `Course`) |

use aqks_relational::RelationSchema;

/// The ORA kind of a relation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RelationKind {
    /// Stores objects only.
    Object,
    /// Stores an m:n (possibly n-ary) relationship.
    Relationship,
    /// Stores objects plus embedded many-to-one relationships.
    Mixed,
    /// Stores a multivalued attribute of `parent` (an object or
    /// relationship relation).
    Component {
        /// The relation this component belongs to.
        parent: String,
    },
}

/// Classifies one relation. See the module table for the rules.
pub fn classify_relation(rel: &RelationSchema) -> RelationKind {
    let pk_lower: Vec<String> = rel.primary_key.iter().map(|a| a.to_lowercase()).collect();

    // Foreign keys whose attributes all sit inside the primary key.
    let fks_in_pk: Vec<&aqks_relational::ForeignKey> = rel
        .foreign_keys
        .iter()
        .filter(|fk| fk.attrs.iter().all(|a| pk_lower.contains(&a.to_lowercase())))
        .collect();

    // Is the whole primary key covered by FK attributes?
    let covered = !pk_lower.is_empty()
        && pk_lower
            .iter()
            .all(|k| fks_in_pk.iter().any(|fk| fk.attrs.iter().any(|a| a.to_lowercase() == *k)));

    if covered && fks_in_pk.len() >= 2 {
        return RelationKind::Relationship;
    }
    if rel.foreign_keys.len() == 1 && fks_in_pk.len() == 1 {
        return RelationKind::Component { parent: fks_in_pk[0].ref_relation.clone() };
    }
    if rel.foreign_keys.is_empty() {
        RelationKind::Object
    } else {
        RelationKind::Mixed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aqks_relational::AttrType;

    fn rel(name: &str) -> RelationSchema {
        RelationSchema::new(name)
    }

    /// Figure 1's relations classify exactly as the paper states:
    /// Student/Course/Faculty/Textbook objects, Enrol/Teach relationships,
    /// Lecturer/Department mixed.
    #[test]
    fn figure1_classification() {
        let mut student = rel("Student");
        student.add_attr("Sid", AttrType::Text).add_attr("Sname", AttrType::Text);
        student.set_primary_key(["Sid"]);
        assert_eq!(classify_relation(&student), RelationKind::Object);

        let mut enrol = rel("Enrol");
        enrol
            .add_attr("Sid", AttrType::Text)
            .add_attr("Code", AttrType::Text)
            .add_attr("Grade", AttrType::Text);
        enrol.set_primary_key(["Sid", "Code"]);
        enrol.add_foreign_key(["Sid"], "Student", ["Sid"]);
        enrol.add_foreign_key(["Code"], "Course", ["Code"]);
        assert_eq!(classify_relation(&enrol), RelationKind::Relationship);

        let mut teach = rel("Teach");
        teach
            .add_attr("Code", AttrType::Text)
            .add_attr("Lid", AttrType::Text)
            .add_attr("Bid", AttrType::Text);
        teach.set_primary_key(["Code", "Lid", "Bid"]);
        teach.add_foreign_key(["Code"], "Course", ["Code"]);
        teach.add_foreign_key(["Lid"], "Lecturer", ["Lid"]);
        teach.add_foreign_key(["Bid"], "Textbook", ["Bid"]);
        assert_eq!(classify_relation(&teach), RelationKind::Relationship);

        let mut lecturer = rel("Lecturer");
        lecturer
            .add_attr("Lid", AttrType::Text)
            .add_attr("Lname", AttrType::Text)
            .add_attr("Did", AttrType::Text);
        lecturer.set_primary_key(["Lid"]);
        lecturer.add_foreign_key(["Did"], "Department", ["Did"]);
        assert_eq!(classify_relation(&lecturer), RelationKind::Mixed);
    }

    /// A multivalued attribute table is a component of its parent.
    #[test]
    fn component_of_object() {
        let mut hobby = rel("StudentHobby");
        hobby.add_attr("Sid", AttrType::Text).add_attr("Hobby", AttrType::Text);
        hobby.set_primary_key(["Sid", "Hobby"]);
        hobby.add_foreign_key(["Sid"], "Student", ["Sid"]);
        assert_eq!(classify_relation(&hobby), RelationKind::Component { parent: "Student".into() });
    }

    /// A component of a relationship (multivalued attribute of Teach).
    #[test]
    fn component_of_relationship() {
        let mut note = rel("TeachNote");
        note.add_attr("Code", AttrType::Text)
            .add_attr("Lid", AttrType::Text)
            .add_attr("Bid", AttrType::Text)
            .add_attr("Note", AttrType::Text);
        note.set_primary_key(["Code", "Lid", "Bid", "Note"]);
        note.add_foreign_key(["Code", "Lid", "Bid"], "Teach", ["Code", "Lid", "Bid"]);
        assert_eq!(classify_relation(&note), RelationKind::Component { parent: "Teach".into() });
    }

    /// Two foreign keys into the same relation still make a relationship
    /// (recursive relationships such as course prerequisites).
    #[test]
    fn recursive_relationship() {
        let mut pre = rel("Prerequisite");
        pre.add_attr("Code", AttrType::Text).add_attr("PreCode", AttrType::Text);
        pre.set_primary_key(["Code", "PreCode"]);
        pre.add_foreign_key(["Code"], "Course", ["Code"]);
        pre.add_foreign_key(["PreCode"], "Course", ["Code"]);
        assert_eq!(classify_relation(&pre), RelationKind::Relationship);
    }

    /// A mixed relation with several FKs outside the key stays mixed
    /// (the denormalized Lecturer of Figure 2).
    #[test]
    fn denormalized_lecturer_is_mixed() {
        let mut lecturer = rel("Lecturer");
        lecturer
            .add_attr("Lid", AttrType::Text)
            .add_attr("Lname", AttrType::Text)
            .add_attr("Did", AttrType::Text)
            .add_attr("Fid", AttrType::Text);
        lecturer.set_primary_key(["Lid"]);
        lecturer.add_foreign_key(["Did"], "Department", ["Did"]);
        lecturer.add_foreign_key(["Fid"], "Faculty", ["Fid"]);
        assert_eq!(classify_relation(&lecturer), RelationKind::Mixed);
    }

    /// A vertical partition (PK equals the single FK) is a component.
    #[test]
    fn vertical_partition_is_component() {
        let mut ext = rel("StudentExtra");
        ext.add_attr("Sid", AttrType::Text).add_attr("Photo", AttrType::Text);
        ext.set_primary_key(["Sid"]);
        ext.add_foreign_key(["Sid"], "Student", ["Sid"]);
        assert_eq!(classify_relation(&ext), RelationKind::Component { parent: "Student".into() });
    }
}
