#![warn(missing_docs)]
#![cfg_attr(not(test), warn(clippy::unwrap_used))]
//! # aqks-sqlgen
//!
//! The SQL subset shared by the semantic engine and the SQAK baseline:
//!
//! * [`ast`] — a `SELECT` statement AST covering exactly the shapes the
//!   paper's translation step emits (conjunctive equi-joins, `contains`
//!   predicates, GROUP BY, the five aggregate functions, DISTINCT, derived
//!   tables in FROM, and nested aggregate queries);
//! * [`render()`] — pretty-printing in the paper's listing style;
//! * [`plan()`] — a planner lowering statements into a physical operator
//!   tree (scans with predicate pushdown, cardinality-aware hash/cross
//!   joins, aggregation, sort/limit) with an EXPLAIN pretty-printer;
//! * [`ops`] — a Volcano-style batch executor over the plan, recording
//!   per-operator rows and wall time into [`ops::ExecStats`];
//! * [`exec`] — the stable `execute(stmt, db)` facade over plan + run,
//!   standing in for the RDBMS the paper ran on.
//!
//! The executor exists because the paper's experiments report *answers*,
//! not just SQL text: Tables 5/6/8/9 compare the numbers both systems
//! return. Execution semantics follow SQL: aggregates skip NULLs, `AVG`
//! is always a float, `contains` is case-insensitive substring match.

pub mod ast;
pub mod batch;
pub mod exec;
pub mod ops;
mod par;
pub mod plan;
pub mod render;
pub mod result;

pub use ast::{AggFunc, ColumnRef, Predicate, SelectItem, SelectStatement, TableExpr};
pub use batch::{Bitmap, Column, ColumnBatch, ColumnData};
pub use exec::{execute, execute_with_opts, execute_with_stats, ExecError};
pub use ops::{
    materialize_batches, materialize_plan, materialize_shared, run_plan, run_plan_opts,
    run_plan_with_shared, ExecStats, OpMetrics, SharedRows,
};
pub use par::ExecOptions;
pub use plan::{
    plan, plan_with_options, render_plan, render_plan_with_stats, PhysAggItem, PhysPred, PlanNode,
    PlanOp, PlanOptions,
};
pub use render::{render, render_spanned, SpanKind, SqlSpan};
pub use result::ResultTable;
