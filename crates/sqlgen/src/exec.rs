//! In-memory execution of [`SelectStatement`]s.
//!
//! Since the planner/operator split, this module is the stable facade
//! over the two-layer pipeline: [`execute`] lowers the statement into a
//! physical operator tree via [`crate::plan::plan`] and runs it with
//! [`crate::ops::run_plan`], keeping the exact signature and SQL
//! semantics of the original single-pass interpreter. Callers that want
//! the per-operator metrics use [`execute_with_stats`].
//!
//! Semantics follow SQL: aggregates skip NULLs; `SUM`/`MIN`/`MAX`/`AVG`
//! over an empty group yield NULL while `COUNT` yields 0; `AVG` is always
//! a float; an aggregate query without GROUP BY returns exactly one row.
//! Additionally, results without an ORDER BY are stably sorted by row
//! value, so answers are reproducible across runs and plan revisions.

use aqks_relational::Database;
// The test suite predates the planner split and reaches these via
// `use super::*`; they are not needed by the facade itself.
#[cfg(test)]
use aqks_relational::Value;

use crate::ast::SelectStatement;
#[cfg(test)]
use crate::ast::{AggFunc, ColumnRef, Predicate, SelectItem, TableExpr};
use crate::ops::ExecStats;
use crate::result::ResultTable;

/// Errors raised during planning or execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExecError {
    /// A FROM item names a relation that is not in the database.
    UnknownRelation(String),
    /// A column reference does not resolve against the FROM items.
    UnknownColumn(String),
    /// Two FROM items share an alias.
    DuplicateAlias(String),
    /// Statement shape not supported (e.g. empty SELECT list).
    Unsupported(String),
    /// A resource budget tripped while the plan was running (cooperative
    /// cancellation; see `aqks-guard`).
    Budget(aqks_guard::Tripped),
    /// A deterministic failpoint fired (fault-injection builds only).
    Fault(&'static str),
}

impl std::fmt::Display for ExecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecError::UnknownRelation(r) => write!(f, "unknown relation `{r}`"),
            ExecError::UnknownColumn(c) => write!(f, "unresolved column `{c}`"),
            ExecError::DuplicateAlias(a) => write!(f, "duplicate FROM alias `{a}`"),
            ExecError::Unsupported(m) => write!(f, "unsupported statement: {m}"),
            ExecError::Budget(t) => write!(f, "{t}"),
            ExecError::Fault(site) => write!(f, "injected fault at `{site}`"),
        }
    }
}

impl std::error::Error for ExecError {}

impl From<aqks_guard::Tripped> for ExecError {
    fn from(t: aqks_guard::Tripped) -> Self {
        ExecError::Budget(t)
    }
}

impl From<aqks_guard::FailpointError> for ExecError {
    fn from(f: aqks_guard::FailpointError) -> Self {
        ExecError::Fault(f.site)
    }
}

/// Executes `stmt` against `db`.
pub fn execute(stmt: &SelectStatement, db: &Database) -> Result<ResultTable, ExecError> {
    execute_with_stats(stmt, db).map(|(table, _)| table)
}

/// Executes `stmt` against `db`, also returning the per-operator
/// execution metrics (rows in/out, build/probe sizes, wall time) of the
/// physical plan that ran.
pub fn execute_with_stats(
    stmt: &SelectStatement,
    db: &Database,
) -> Result<(ResultTable, ExecStats), ExecError> {
    execute_with_opts(stmt, db, crate::par::ExecOptions::default())
}

/// [`execute_with_stats`] with execution options (worker thread count).
/// Results are identical at every thread count; only wall time and the
/// per-operator `threads` stats change.
pub fn execute_with_opts(
    stmt: &SelectStatement,
    db: &Database,
    opts: crate::par::ExecOptions,
) -> Result<(ResultTable, ExecStats), ExecError> {
    let plan = crate::plan::plan(stmt, db)?;
    crate::ops::run_plan_opts(&plan, db, &crate::ops::SharedRows::new(), opts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use aqks_relational::{AttrType, RelationSchema};

    /// Small Student/Enrol/Course database mirroring Figure 1's left side.
    fn db() -> Database {
        let mut db = Database::new("uni");
        let mut s = RelationSchema::new("Student");
        s.add_attr("Sid", AttrType::Text)
            .add_attr("Sname", AttrType::Text)
            .add_attr("Age", AttrType::Int);
        s.set_primary_key(["Sid"]);
        db.add_relation(s).unwrap();
        let mut c = RelationSchema::new("Course");
        c.add_attr("Code", AttrType::Text)
            .add_attr("Title", AttrType::Text)
            .add_attr("Credit", AttrType::Float);
        c.set_primary_key(["Code"]);
        db.add_relation(c).unwrap();
        let mut e = RelationSchema::new("Enrol");
        e.add_attr("Sid", AttrType::Text)
            .add_attr("Code", AttrType::Text)
            .add_attr("Grade", AttrType::Text);
        e.set_primary_key(["Sid", "Code"]);
        e.add_foreign_key(["Sid"], "Student", ["Sid"]);
        e.add_foreign_key(["Code"], "Course", ["Code"]);
        db.add_relation(e).unwrap();

        for (sid, name, age) in [("s1", "George", 22), ("s2", "Green", 24), ("s3", "Green", 21)] {
            db.insert("Student", vec![Value::str(sid), Value::str(name), Value::Int(age)]).unwrap();
        }
        for (code, title, credit) in
            [("c1", "Java", 5.0), ("c2", "Database", 4.0), ("c3", "Multimedia", 3.0)]
        {
            db.insert("Course", vec![Value::str(code), Value::str(title), Value::Float(credit)])
                .unwrap();
        }
        for (sid, code, g) in [
            ("s1", "c1", "A"),
            ("s1", "c2", "B"),
            ("s1", "c3", "B"),
            ("s2", "c1", "A"),
            ("s3", "c1", "A"),
            ("s3", "c3", "B"),
        ] {
            db.insert("Enrol", vec![Value::str(sid), Value::str(code), Value::str(g)]).unwrap();
        }
        db
    }

    fn col(q: &str, c: &str) -> ColumnRef {
        ColumnRef::new(q, c)
    }

    /// Q1 as SQAK would issue it (paper's first listing): one merged row.
    #[test]
    fn q1_sqak_style_merges_greens() {
        let stmt = SelectStatement {
            items: vec![
                SelectItem::Column { col: col("S", "Sname"), alias: None },
                SelectItem::Aggregate {
                    func: AggFunc::Sum,
                    arg: col("C", "Credit"),
                    distinct: false,
                    alias: "sumCredit".into(),
                },
            ],
            from: vec![
                TableExpr::Relation { name: "Student".into(), alias: "S".into() },
                TableExpr::Relation { name: "Enrol".into(), alias: "E".into() },
                TableExpr::Relation { name: "Course".into(), alias: "C".into() },
            ],
            predicates: vec![
                Predicate::JoinEq(col("E", "Sid"), col("S", "Sid")),
                Predicate::JoinEq(col("E", "Code"), col("C", "Code")),
                Predicate::Contains(col("S", "Sname"), "Green".into()),
            ],
            group_by: vec![col("S", "Sname")],
            ..Default::default()
        };
        let r = execute(&stmt, &db()).unwrap();
        assert_eq!(r.len(), 1);
        assert_eq!(r.rows[0][1], Value::Float(13.0), "5 + (5+3) merged into 13");
    }

    /// The corrected Q1: grouping by Sid separates the two Greens.
    #[test]
    fn q1_semantic_style_distinguishes_greens() {
        let stmt = SelectStatement {
            items: vec![
                SelectItem::Column { col: col("S", "Sid"), alias: None },
                SelectItem::Aggregate {
                    func: AggFunc::Sum,
                    arg: col("C", "Credit"),
                    distinct: false,
                    alias: "sumCredit".into(),
                },
            ],
            from: vec![
                TableExpr::Relation { name: "Student".into(), alias: "S".into() },
                TableExpr::Relation { name: "Enrol".into(), alias: "E".into() },
                TableExpr::Relation { name: "Course".into(), alias: "C".into() },
            ],
            predicates: vec![
                Predicate::JoinEq(col("E", "Sid"), col("S", "Sid")),
                Predicate::JoinEq(col("E", "Code"), col("C", "Code")),
                Predicate::Contains(col("S", "Sname"), "Green".into()),
            ],
            group_by: vec![col("S", "Sid")],
            ..Default::default()
        };
        let r = execute(&stmt, &db()).unwrap().sorted();
        assert_eq!(r.len(), 2);
        assert_eq!(r.rows[0], vec![Value::str("s2"), Value::Float(5.0)]);
        assert_eq!(r.rows[1], vec![Value::str("s3"), Value::Float(8.0)]);
    }

    #[test]
    fn global_aggregate_without_groupby_returns_one_row() {
        let stmt = SelectStatement {
            items: vec![SelectItem::Aggregate {
                func: AggFunc::Avg,
                arg: col("S", "Age"),
                distinct: false,
                alias: "avgAge".into(),
            }],
            from: vec![TableExpr::Relation { name: "Student".into(), alias: "S".into() }],
            ..Default::default()
        };
        let r = execute(&stmt, &db()).unwrap();
        assert_eq!(r.scalar(), Some(&Value::Float((22.0 + 24.0 + 21.0) / 3.0)));
    }

    #[test]
    fn aggregate_over_empty_input() {
        let stmt = SelectStatement {
            items: vec![
                SelectItem::Aggregate {
                    func: AggFunc::Count,
                    arg: col("S", "Sid"),
                    distinct: false,
                    alias: "n".into(),
                },
                SelectItem::Aggregate {
                    func: AggFunc::Sum,
                    arg: col("S", "Age"),
                    distinct: false,
                    alias: "s".into(),
                },
            ],
            from: vec![TableExpr::Relation { name: "Student".into(), alias: "S".into() }],
            predicates: vec![Predicate::Contains(col("S", "Sname"), "nobody".into())],
            ..Default::default()
        };
        let r = execute(&stmt, &db()).unwrap();
        assert_eq!(r.rows, vec![vec![Value::Int(0), Value::Null]]);
    }

    #[test]
    fn derived_table_in_from() {
        let inner = SelectStatement {
            distinct: true,
            items: vec![SelectItem::Column { col: col("E", "Sid"), alias: None }],
            from: vec![TableExpr::Relation { name: "Enrol".into(), alias: "E".into() }],
            ..Default::default()
        };
        let stmt = SelectStatement {
            items: vec![SelectItem::Aggregate {
                func: AggFunc::Count,
                arg: col("D", "Sid"),
                distinct: false,
                alias: "n".into(),
            }],
            from: vec![TableExpr::Derived { query: Box::new(inner), alias: "D".into() }],
            ..Default::default()
        };
        let r = execute(&stmt, &db()).unwrap();
        assert_eq!(r.scalar(), Some(&Value::Int(3)));
    }

    #[test]
    fn self_join_counts_common_courses() {
        // Courses taken by both s1 (George) and s3 (a Green).
        let stmt = SelectStatement {
            items: vec![SelectItem::Aggregate {
                func: AggFunc::Count,
                arg: col("C", "Code"),
                distinct: false,
                alias: "n".into(),
            }],
            from: vec![
                TableExpr::Relation { name: "Course".into(), alias: "C".into() },
                TableExpr::Relation { name: "Enrol".into(), alias: "E1".into() },
                TableExpr::Relation { name: "Enrol".into(), alias: "E2".into() },
            ],
            predicates: vec![
                Predicate::JoinEq(col("C", "Code"), col("E1", "Code")),
                Predicate::JoinEq(col("C", "Code"), col("E2", "Code")),
                Predicate::Eq(col("E1", "Sid"), Value::str("s1")),
                Predicate::Eq(col("E2", "Sid"), Value::str("s3")),
            ],
            ..Default::default()
        };
        let r = execute(&stmt, &db()).unwrap();
        assert_eq!(r.scalar(), Some(&Value::Int(2)), "c1 and c3 shared");
    }

    #[test]
    fn count_distinct() {
        let stmt = SelectStatement {
            items: vec![SelectItem::Aggregate {
                func: AggFunc::Count,
                arg: col("E", "Sid"),
                distinct: true,
                alias: "n".into(),
            }],
            from: vec![TableExpr::Relation { name: "Enrol".into(), alias: "E".into() }],
            ..Default::default()
        };
        let r = execute(&stmt, &db()).unwrap();
        assert_eq!(r.scalar(), Some(&Value::Int(3)));
    }

    #[test]
    fn min_max_on_strings_and_dates() {
        let stmt = SelectStatement {
            items: vec![
                SelectItem::Aggregate {
                    func: AggFunc::Min,
                    arg: col("S", "Sname"),
                    distinct: false,
                    alias: "lo".into(),
                },
                SelectItem::Aggregate {
                    func: AggFunc::Max,
                    arg: col("S", "Sname"),
                    distinct: false,
                    alias: "hi".into(),
                },
            ],
            from: vec![TableExpr::Relation { name: "Student".into(), alias: "S".into() }],
            ..Default::default()
        };
        let r = execute(&stmt, &db()).unwrap();
        assert_eq!(r.rows[0], vec![Value::str("George"), Value::str("Green")]);
    }

    #[test]
    fn error_on_unknown_relation_and_column() {
        let stmt = SelectStatement {
            items: vec![SelectItem::Column { col: col("X", "a"), alias: None }],
            from: vec![TableExpr::Relation { name: "Nope".into(), alias: "X".into() }],
            ..Default::default()
        };
        assert!(matches!(execute(&stmt, &db()), Err(ExecError::UnknownRelation(_))));

        let stmt = SelectStatement {
            items: vec![SelectItem::Column { col: col("S", "missing"), alias: None }],
            from: vec![TableExpr::Relation { name: "Student".into(), alias: "S".into() }],
            ..Default::default()
        };
        assert!(matches!(execute(&stmt, &db()), Err(ExecError::UnknownColumn(_))));
    }

    #[test]
    fn duplicate_alias_rejected() {
        let stmt = SelectStatement {
            items: vec![SelectItem::Column { col: col("S", "Sid"), alias: None }],
            from: vec![
                TableExpr::Relation { name: "Student".into(), alias: "S".into() },
                TableExpr::Relation { name: "Enrol".into(), alias: "s".into() },
            ],
            ..Default::default()
        };
        assert!(matches!(execute(&stmt, &db()), Err(ExecError::DuplicateAlias(_))));
    }

    #[test]
    fn nested_aggregate_example7_shape() {
        // AVG over a grouped COUNT, paper Example 7 shape on Enrol:
        // average number of students per course = 6 enrolments / 3 courses.
        let inner = SelectStatement {
            items: vec![
                SelectItem::Column { col: col("E", "Code"), alias: None },
                SelectItem::Aggregate {
                    func: AggFunc::Count,
                    arg: col("E", "Sid"),
                    distinct: false,
                    alias: "numSid".into(),
                },
            ],
            from: vec![TableExpr::Relation { name: "Enrol".into(), alias: "E".into() }],
            group_by: vec![col("E", "Code")],
            ..Default::default()
        };
        let outer = SelectStatement {
            items: vec![SelectItem::Aggregate {
                func: AggFunc::Avg,
                arg: col("R", "numSid"),
                distinct: false,
                alias: "avgnumSid".into(),
            }],
            from: vec![TableExpr::Derived { query: Box::new(inner), alias: "R".into() }],
            ..Default::default()
        };
        let r = execute(&outer, &db()).unwrap();
        assert_eq!(r.scalar(), Some(&Value::Float(2.0)));
    }

    /// The greedy join order makes FROM-clause order irrelevant to the
    /// result (and avoids the Part x Supplier cross product a naive
    /// left-to-right fold would build for chain joins).
    #[test]
    fn from_order_does_not_change_results() {
        let base = SelectStatement {
            items: vec![
                SelectItem::Column { col: col("S", "Sid"), alias: None },
                SelectItem::Aggregate {
                    func: AggFunc::Count,
                    arg: col("C", "Code"),
                    distinct: false,
                    alias: "n".into(),
                },
            ],
            from: vec![
                TableExpr::Relation { name: "Student".into(), alias: "S".into() },
                TableExpr::Relation { name: "Course".into(), alias: "C".into() },
                TableExpr::Relation { name: "Enrol".into(), alias: "E".into() },
            ],
            predicates: vec![
                Predicate::JoinEq(col("E", "Sid"), col("S", "Sid")),
                Predicate::JoinEq(col("E", "Code"), col("C", "Code")),
            ],
            group_by: vec![col("S", "Sid")],
            ..Default::default()
        };
        let db = db();
        let reference = execute(&base, &db).unwrap().sorted();
        // Student and Course are not directly joined: with left-to-right
        // folding this order would cross-join them first.
        let mut permuted = base.clone();
        permuted.from.rotate_left(1);
        assert_eq!(execute(&permuted, &db).unwrap().sorted().rows, reference.rows);
        let mut permuted = base;
        permuted.from.swap(0, 2);
        assert_eq!(execute(&permuted, &db).unwrap().sorted().rows, reference.rows);
    }

    #[test]
    fn order_by_and_limit() {
        use crate::ast::OrderKey;
        // Top-2 students by enrolment count, descending.
        let stmt = SelectStatement {
            items: vec![
                SelectItem::Column { col: col("E", "Sid"), alias: None },
                SelectItem::Aggregate {
                    func: AggFunc::Count,
                    arg: col("E", "Code"),
                    distinct: false,
                    alias: "n".into(),
                },
            ],
            from: vec![TableExpr::Relation { name: "Enrol".into(), alias: "E".into() }],
            group_by: vec![col("E", "Sid")],
            order_by: vec![
                OrderKey { column: col("", "n"), desc: true },
                OrderKey { column: col("", "Sid"), desc: false },
            ],
            limit: Some(2),
            ..Default::default()
        };
        let r = execute(&stmt, &db()).unwrap();
        assert_eq!(r.len(), 2);
        assert_eq!(r.rows[0], vec![Value::str("s1"), Value::Int(3)]);
        assert_eq!(r.rows[1], vec![Value::str("s3"), Value::Int(2)]);
        // Rendering includes the clauses.
        let text = stmt.to_string();
        assert!(text.contains("ORDER BY .n DESC, .Sid") || text.contains("ORDER BY"), "{text}");
        assert!(text.contains("LIMIT 2"), "{text}");
    }

    #[test]
    fn order_by_unknown_column_errors() {
        use crate::ast::OrderKey;
        let stmt = SelectStatement {
            items: vec![SelectItem::Column { col: col("S", "Sid"), alias: None }],
            from: vec![TableExpr::Relation { name: "Student".into(), alias: "S".into() }],
            order_by: vec![OrderKey { column: col("S", "nope"), desc: false }],
            ..Default::default()
        };
        assert!(matches!(execute(&stmt, &db()), Err(ExecError::UnknownColumn(_))));
    }

    #[test]
    fn sum_over_text_is_null() {
        let stmt = SelectStatement {
            items: vec![SelectItem::Aggregate {
                func: AggFunc::Sum,
                arg: col("S", "Sname"),
                distinct: false,
                alias: "s".into(),
            }],
            from: vec![TableExpr::Relation { name: "Student".into(), alias: "S".into() }],
            ..Default::default()
        };
        let r = execute(&stmt, &db()).unwrap();
        assert_eq!(r.scalar(), Some(&Value::Null));
    }

    #[test]
    fn null_join_keys_never_match() {
        let mut db = db();
        db.insert("Enrol", vec![Value::Null, Value::str("c2"), Value::str("C")]).unwrap();
        let stmt = SelectStatement {
            items: vec![SelectItem::Aggregate {
                func: AggFunc::Count,
                arg: col("E", "Code"),
                distinct: false,
                alias: "n".into(),
            }],
            from: vec![
                TableExpr::Relation { name: "Student".into(), alias: "S".into() },
                TableExpr::Relation { name: "Enrol".into(), alias: "E".into() },
            ],
            predicates: vec![Predicate::JoinEq(col("S", "Sid"), col("E", "Sid"))],
            ..Default::default()
        };
        let r = execute(&stmt, &db).unwrap();
        assert_eq!(r.scalar(), Some(&Value::Int(6)), "NULL Sid row must not join");
    }
}
