//! Name and type resolution for one `SELECT` statement.
//!
//! A [`Scope`] describes what every FROM item exposes: its output columns
//! with declared types and, where derivable, the base-relation attribute
//! each output ultimately projects (its *provenance*). Base relations
//! expose their schema attributes directly; derived tables expose their
//! select list, resolved recursively against their own scope.

use aqks_relational::{AttrType, DatabaseSchema, RelationSchema};
use aqks_sqlgen::{AggFunc, ColumnRef, SelectItem, SelectStatement, TableExpr};

/// One column a FROM item exposes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OutputCol {
    /// Output name (canonical casing where known).
    pub name: String,
    /// Declared type, when derivable.
    pub ty: Option<AttrType>,
    /// The base `(relation, attribute)` this column projects, traced
    /// through derived tables. `None` for aggregate results.
    pub base: Option<(String, String)>,
}

/// Where a FROM item's rows come from.
#[derive(Debug)]
pub enum ItemSource<'a> {
    /// A base relation found in the schema.
    Base(&'a RelationSchema),
    /// A derived table with the subquery's own scope.
    Derived(Box<Scope<'a>>, &'a SelectStatement),
    /// A relation name the schema does not know (reported by pass P1;
    /// lookups against it resolve to nothing without cascading).
    Unknown,
}

/// One FROM item of the analyzed statement.
#[derive(Debug)]
pub struct ItemScope<'a> {
    /// The item's alias.
    pub alias: String,
    /// Row source.
    pub source: ItemSource<'a>,
    /// Exposed columns.
    pub outputs: Vec<OutputCol>,
}

impl ItemScope<'_> {
    /// Finds an exposed column by case-insensitive name.
    pub fn output(&self, name: &str) -> Option<&OutputCol> {
        self.outputs.iter().find(|o| o.name.eq_ignore_ascii_case(name))
    }
}

/// Why a column reference failed to resolve.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ResolveError {
    /// The qualifier names no FROM item.
    UnknownAlias(String),
    /// The qualifier names more than one FROM item.
    AmbiguousAlias(String),
    /// The item exists but exposes no such column.
    UnknownColumn(String, String),
    /// The item is an unknown relation; column lookups are suppressed.
    PoisonedItem,
}

/// Resolution context for one statement.
#[derive(Debug)]
pub struct Scope<'a> {
    /// One entry per FROM item, in clause order.
    pub items: Vec<ItemScope<'a>>,
}

impl<'a> Scope<'a> {
    /// Builds the scope of `stmt` (recursively for derived tables)
    /// against `schema`.
    pub fn build(stmt: &'a SelectStatement, schema: &'a DatabaseSchema) -> Scope<'a> {
        let items = stmt
            .from
            .iter()
            .map(|item| match item {
                TableExpr::Relation { name, alias } => match schema.relation(name) {
                    Some(rel) => ItemScope {
                        alias: alias.clone(),
                        source: ItemSource::Base(rel),
                        outputs: rel
                            .attrs
                            .iter()
                            .map(|a| OutputCol {
                                name: a.name.clone(),
                                ty: Some(a.ty),
                                base: Some((rel.name.clone(), a.name.clone())),
                            })
                            .collect(),
                    },
                    None => ItemScope {
                        alias: alias.clone(),
                        source: ItemSource::Unknown,
                        outputs: Vec::new(),
                    },
                },
                TableExpr::Derived { query, alias } => {
                    let sub = Scope::build(query, schema);
                    let outputs = statement_outputs(query, &sub);
                    ItemScope {
                        alias: alias.clone(),
                        source: ItemSource::Derived(Box::new(sub), query),
                        outputs,
                    }
                }
            })
            .collect();
        Scope { items }
    }

    /// Finds the FROM item a qualifier addresses.
    pub fn item(&self, qualifier: &str) -> Result<&ItemScope<'a>, ResolveError> {
        let mut hits = self.items.iter().filter(|i| i.alias.eq_ignore_ascii_case(qualifier));
        match (hits.next(), hits.next()) {
            (Some(item), None) => Ok(item),
            (Some(_), Some(_)) => Err(ResolveError::AmbiguousAlias(qualifier.to_string())),
            (None, _) => Err(ResolveError::UnknownAlias(qualifier.to_string())),
        }
    }

    /// Resolves a qualified column reference to its exposed column.
    pub fn resolve(&self, col: &ColumnRef) -> Result<&OutputCol, ResolveError> {
        let item = self.item(&col.qualifier)?;
        if matches!(item.source, ItemSource::Unknown) {
            return Err(ResolveError::PoisonedItem);
        }
        item.output(&col.column)
            .ok_or_else(|| ResolveError::UnknownColumn(col.qualifier.clone(), col.column.clone()))
    }
}

/// The columns `stmt` itself exposes, given its scope.
pub fn statement_outputs(stmt: &SelectStatement, scope: &Scope<'_>) -> Vec<OutputCol> {
    stmt.items
        .iter()
        .map(|item| match item {
            SelectItem::Column { col, alias } => {
                let resolved = scope.resolve(col).ok();
                OutputCol {
                    name: alias.clone().unwrap_or_else(|| {
                        resolved.map_or_else(|| col.column.clone(), |o| o.name.clone())
                    }),
                    ty: resolved.and_then(|o| o.ty),
                    base: resolved.and_then(|o| o.base.clone()),
                }
            }
            SelectItem::Aggregate { func, arg, alias, .. } => {
                let arg_ty = scope.resolve(arg).ok().and_then(|o| o.ty);
                let ty = match func {
                    AggFunc::Count => Some(AttrType::Int),
                    AggFunc::Avg => Some(AttrType::Float),
                    AggFunc::Sum | AggFunc::Min | AggFunc::Max => arg_ty,
                };
                OutputCol { name: alias.clone(), ty, base: None }
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use aqks_relational::{AttrType, DatabaseSchema, RelationSchema};
    use aqks_sqlgen::ColumnRef;

    fn schema() -> DatabaseSchema {
        let mut s = RelationSchema::new("Student");
        s.add_attr("Sid", AttrType::Text).add_attr("Age", AttrType::Int);
        s.set_primary_key(["Sid"]);
        DatabaseSchema { relations: vec![s] }
    }

    #[test]
    fn base_relation_scope() {
        let schema = schema();
        let stmt = SelectStatement {
            items: vec![SelectItem::Column { col: ColumnRef::new("S", "sid"), alias: None }],
            from: vec![TableExpr::Relation { name: "student".into(), alias: "S".into() }],
            ..Default::default()
        };
        let scope = Scope::build(&stmt, &schema);
        let col = scope.resolve(&ColumnRef::new("s", "AGE")).unwrap();
        assert_eq!(col.ty, Some(AttrType::Int));
        assert_eq!(col.base, Some(("Student".into(), "Age".into())));
        assert!(matches!(
            scope.resolve(&ColumnRef::new("S", "nope")),
            Err(ResolveError::UnknownColumn(..))
        ));
        assert!(matches!(
            scope.resolve(&ColumnRef::new("X", "Sid")),
            Err(ResolveError::UnknownAlias(..))
        ));
    }

    #[test]
    fn derived_scope_traces_provenance_and_types() {
        let schema = schema();
        let inner = SelectStatement {
            distinct: true,
            items: vec![
                SelectItem::Column { col: ColumnRef::new("S", "Sid"), alias: None },
                SelectItem::Aggregate {
                    func: AggFunc::Count,
                    arg: ColumnRef::new("S", "Sid"),
                    distinct: false,
                    alias: "n".into(),
                },
            ],
            from: vec![TableExpr::Relation { name: "Student".into(), alias: "S".into() }],
            ..Default::default()
        };
        let stmt = SelectStatement {
            items: vec![SelectItem::Column { col: ColumnRef::new("D", "Sid"), alias: None }],
            from: vec![TableExpr::Derived { query: Box::new(inner), alias: "D".into() }],
            ..Default::default()
        };
        let scope = Scope::build(&stmt, &schema);
        let sid = scope.resolve(&ColumnRef::new("D", "sid")).unwrap();
        assert_eq!(sid.base, Some(("Student".into(), "Sid".into())));
        let n = scope.resolve(&ColumnRef::new("D", "n")).unwrap();
        assert_eq!(n.ty, Some(AttrType::Int));
        assert_eq!(n.base, None);
    }

    #[test]
    fn unknown_relation_is_poisoned() {
        let schema = schema();
        let stmt = SelectStatement {
            items: vec![SelectItem::Column { col: ColumnRef::new("Z", "x"), alias: None }],
            from: vec![TableExpr::Relation { name: "Zebra".into(), alias: "Z".into() }],
            ..Default::default()
        };
        let scope = Scope::build(&stmt, &schema);
        assert!(matches!(
            scope.resolve(&ColumnRef::new("Z", "x")),
            Err(ResolveError::PoisonedItem)
        ));
    }
}
