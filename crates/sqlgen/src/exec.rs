//! In-memory execution of [`SelectStatement`]s.
//!
//! The executor is the stand-in for the RDBMS the paper ran its generated
//! SQL on. It evaluates FROM items (materializing derived tables
//! recursively), hash-joins them left-to-right along the statement's
//! equi-join predicates (falling back to a cross product when no join
//! predicate links the next item), applies the remaining selections, and
//! finally evaluates grouping, aggregates, projection and DISTINCT.
//!
//! Semantics follow SQL: aggregates skip NULLs; `SUM`/`MIN`/`MAX`/`AVG`
//! over an empty group yield NULL while `COUNT` yields 0; `AVG` is always
//! a float; an aggregate query without GROUP BY returns exactly one row.

use std::collections::HashMap;

use aqks_relational::{Database, Row, Value};

use crate::ast::{AggFunc, ColumnRef, Predicate, SelectItem, SelectStatement, TableExpr};
use crate::result::ResultTable;

/// Errors raised during execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExecError {
    /// A FROM item names a relation that is not in the database.
    UnknownRelation(String),
    /// A column reference does not resolve against the FROM items.
    UnknownColumn(String),
    /// Two FROM items share an alias.
    DuplicateAlias(String),
    /// Statement shape not supported (e.g. empty SELECT list).
    Unsupported(String),
}

impl std::fmt::Display for ExecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecError::UnknownRelation(r) => write!(f, "unknown relation `{r}`"),
            ExecError::UnknownColumn(c) => write!(f, "unresolved column `{c}`"),
            ExecError::DuplicateAlias(a) => write!(f, "duplicate FROM alias `{a}`"),
            ExecError::Unsupported(m) => write!(f, "unsupported statement: {m}"),
        }
    }
}

impl std::error::Error for ExecError {}

/// Rows tagged with the (alias, column) pairs that name their columns.
struct Working {
    /// Lowercased (alias, column) for resolution.
    cols: Vec<(String, String)>,
    rows: Vec<Row>,
}

impl Working {
    fn resolve(&self, c: &ColumnRef) -> Result<usize, ExecError> {
        let q = c.qualifier.to_lowercase();
        let n = c.column.to_lowercase();
        self.cols
            .iter()
            .position(|(a, col)| *a == q && *col == n)
            .ok_or_else(|| ExecError::UnknownColumn(c.to_string()))
    }

    fn try_resolve(&self, c: &ColumnRef) -> Option<usize> {
        self.resolve(c).ok()
    }
}

/// Executes `stmt` against `db`.
pub fn execute(stmt: &SelectStatement, db: &Database) -> Result<ResultTable, ExecError> {
    if stmt.items.is_empty() {
        return Err(ExecError::Unsupported("empty SELECT list".into()));
    }
    if stmt.from.is_empty() {
        return Err(ExecError::Unsupported("empty FROM clause".into()));
    }

    // --- Materialize FROM items -----------------------------------------
    let mut sources: Vec<Working> = Vec::with_capacity(stmt.from.len());
    {
        let mut seen_alias: Vec<String> = Vec::new();
        for item in &stmt.from {
            let alias = item.alias().to_lowercase();
            if seen_alias.contains(&alias) {
                return Err(ExecError::DuplicateAlias(item.alias().to_string()));
            }
            seen_alias.push(alias.clone());
            sources.push(materialize(item, &alias, db)?);
        }
    }

    // --- Join, preferring connected sources -------------------------------
    // Greedy order: always join next a source that an unconsumed equi-join
    // links to the accumulated rows; cross products only as a last resort.
    // (A left-to-right fold would build Part x Supplier before the
    // Lineitem that connects them — quadratic rows for nothing.)
    let mut consumed = vec![false; stmt.predicates.len()];
    let mut acc = sources.remove(0);
    while !sources.is_empty() {
        let mut pick: Option<usize> = None;
        'scan: for (si, right) in sources.iter().enumerate() {
            for (pi, p) in stmt.predicates.iter().enumerate() {
                if consumed[pi] {
                    continue;
                }
                if let Predicate::JoinEq(a, b) = p {
                    let connects = (acc.try_resolve(a).is_some() && right.try_resolve(b).is_some())
                        || (acc.try_resolve(b).is_some() && right.try_resolve(a).is_some());
                    if connects {
                        pick = Some(si);
                        break 'scan;
                    }
                }
            }
        }
        let right = sources.remove(pick.unwrap_or(0));

        // Join keys: unconsumed equi-joins with one side in `acc` and the
        // other in `right`.
        let mut left_keys: Vec<usize> = Vec::new();
        let mut right_keys: Vec<usize> = Vec::new();
        for (pi, p) in stmt.predicates.iter().enumerate() {
            if consumed[pi] {
                continue;
            }
            if let Predicate::JoinEq(a, b) = p {
                let (l, r) = match (acc.try_resolve(a), right.try_resolve(b)) {
                    (Some(l), Some(r)) => (l, r),
                    _ => match (acc.try_resolve(b), right.try_resolve(a)) {
                        (Some(l), Some(r)) => (l, r),
                        _ => continue,
                    },
                };
                left_keys.push(l);
                right_keys.push(r);
                consumed[pi] = true;
            }
        }
        acc = if left_keys.is_empty() {
            cross_join(acc, right)
        } else {
            hash_join(acc, right, &left_keys, &right_keys)
        };
    }

    // --- Residual predicates ---------------------------------------------
    for (pi, p) in stmt.predicates.iter().enumerate() {
        if consumed[pi] {
            continue;
        }
        match p {
            Predicate::JoinEq(a, b) => {
                let (l, r) = (acc.resolve(a)?, acc.resolve(b)?);
                acc.rows.retain(|row| !row[l].is_null() && row[l] == row[r]);
            }
            Predicate::Contains(c, text) => {
                let i = acc.resolve(c)?;
                let needle = text.to_lowercase();
                acc.rows.retain(|row| row[i].contains_ci(&needle));
            }
            Predicate::Eq(c, v) => {
                let i = acc.resolve(c)?;
                acc.rows.retain(|row| row[i] == *v);
            }
        }
    }

    // --- Grouping / aggregation / projection ------------------------------
    let columns: Vec<String> = stmt.items.iter().map(|i| i.output_name().to_string()).collect();
    let mut result = ResultTable::new(columns);

    if stmt.has_aggregate() || !stmt.group_by.is_empty() {
        let key_idx: Vec<usize> =
            stmt.group_by.iter().map(|c| acc.resolve(c)).collect::<Result<_, _>>()?;
        // Pre-resolve aggregate arguments and plain columns.
        let item_idx: Vec<usize> = stmt
            .items
            .iter()
            .map(|item| match item {
                SelectItem::Column { col, .. } => acc.resolve(col),
                SelectItem::Aggregate { arg, .. } => acc.resolve(arg),
            })
            .collect::<Result<_, _>>()?;

        let mut order: Vec<Vec<Value>> = Vec::new();
        let mut groups: HashMap<Vec<Value>, Vec<usize>> = HashMap::new();
        for (ri, row) in acc.rows.iter().enumerate() {
            let key: Vec<Value> = key_idx.iter().map(|&i| row[i].clone()).collect();
            let entry = groups.entry(key.clone()).or_default();
            if entry.is_empty() {
                order.push(key);
            }
            entry.push(ri);
        }
        // A global aggregate over an empty input still yields one row.
        if groups.is_empty() && stmt.group_by.is_empty() {
            order.push(Vec::new());
            groups.insert(Vec::new(), Vec::new());
        }

        for key in order {
            let members = &groups[&key];
            let mut out = Vec::with_capacity(stmt.items.len());
            for (item, &idx) in stmt.items.iter().zip(&item_idx) {
                match item {
                    SelectItem::Column { .. } => {
                        let v = members
                            .first()
                            .map(|&ri| acc.rows[ri][idx].clone())
                            .unwrap_or(Value::Null);
                        out.push(v);
                    }
                    SelectItem::Aggregate { func, distinct, .. } => {
                        let vals = members.iter().map(|&ri| &acc.rows[ri][idx]);
                        out.push(aggregate(*func, *distinct, vals));
                    }
                }
            }
            result.rows.push(out);
        }
    } else {
        let idx: Vec<usize> = stmt
            .items
            .iter()
            .map(|item| match item {
                SelectItem::Column { col, .. } => acc.resolve(col),
                SelectItem::Aggregate { .. } => unreachable!("guarded by has_aggregate"),
            })
            .collect::<Result<_, _>>()?;
        for row in &acc.rows {
            result.rows.push(idx.iter().map(|&i| row[i].clone()).collect());
        }
    }

    if stmt.distinct {
        result.dedup_rows();
    }

    // --- ORDER BY / LIMIT --------------------------------------------------
    // Keys resolve against the output columns first (SELECT aliases), so
    // `ORDER BY numLid DESC` works; a qualified key that is not an output
    // column is an error (it was not projected).
    if !stmt.order_by.is_empty() {
        let keys: Vec<(usize, bool)> = stmt
            .order_by
            .iter()
            .map(|k| {
                result
                    .column_index(&k.column.column)
                    .map(|i| (i, k.desc))
                    .ok_or_else(|| ExecError::UnknownColumn(k.column.to_string()))
            })
            .collect::<Result<_, _>>()?;
        result.rows.sort_by(|a, b| {
            for &(i, desc) in &keys {
                let ord = a[i].cmp(&b[i]);
                let ord = if desc { ord.reverse() } else { ord };
                if ord != std::cmp::Ordering::Equal {
                    return ord;
                }
            }
            std::cmp::Ordering::Equal
        });
    }
    if let Some(limit) = stmt.limit {
        result.rows.truncate(limit);
    }
    Ok(result)
}

fn materialize(item: &TableExpr, alias_lower: &str, db: &Database) -> Result<Working, ExecError> {
    match item {
        TableExpr::Relation { name, .. } => {
            let table = db.table(name).ok_or_else(|| ExecError::UnknownRelation(name.clone()))?;
            let cols = table
                .schema
                .attr_names()
                .map(|a| (alias_lower.to_string(), a.to_lowercase()))
                .collect();
            Ok(Working { cols, rows: table.rows().to_vec() })
        }
        TableExpr::Derived { query, .. } => {
            let sub = execute(query, db)?;
            let cols =
                sub.columns.iter().map(|c| (alias_lower.to_string(), c.to_lowercase())).collect();
            Ok(Working { cols, rows: sub.rows })
        }
    }
}

fn cross_join(left: Working, right: Working) -> Working {
    let mut cols = left.cols;
    cols.extend(right.cols);
    let mut rows = Vec::with_capacity(left.rows.len() * right.rows.len());
    for l in &left.rows {
        for r in &right.rows {
            let mut row = l.clone();
            row.extend(r.iter().cloned());
            rows.push(row);
        }
    }
    Working { cols, rows }
}

fn hash_join(left: Working, right: Working, lk: &[usize], rk: &[usize]) -> Working {
    let mut table: HashMap<Vec<&Value>, Vec<usize>> = HashMap::with_capacity(right.rows.len());
    for (ri, row) in right.rows.iter().enumerate() {
        let key: Vec<&Value> = rk.iter().map(|&i| &row[i]).collect();
        if key.iter().any(|v| v.is_null()) {
            continue; // NULL never joins.
        }
        table.entry(key).or_default().push(ri);
    }
    let mut cols = left.cols;
    cols.extend(right.cols.iter().cloned());
    let mut rows = Vec::new();
    for l in &left.rows {
        let key: Vec<&Value> = lk.iter().map(|&i| &l[i]).collect();
        if key.iter().any(|v| v.is_null()) {
            continue;
        }
        if let Some(matches) = table.get(&key) {
            for &ri in matches {
                let mut row = l.clone();
                row.extend(right.rows[ri].iter().cloned());
                rows.push(row);
            }
        }
    }
    Working { cols, rows }
}

/// Evaluates one aggregate over a group's values (NULLs skipped).
fn aggregate<'a, I: Iterator<Item = &'a Value>>(func: AggFunc, distinct: bool, vals: I) -> Value {
    let mut non_null: Vec<&Value> = vals.filter(|v| !v.is_null()).collect();
    if distinct {
        let mut seen = std::collections::HashSet::new();
        non_null.retain(|v| seen.insert((*v).clone()));
    }
    match func {
        AggFunc::Count => Value::Int(non_null.len() as i64),
        AggFunc::Sum => {
            let all_int = non_null.iter().all(|v| matches!(v, Value::Int(_)));
            let nums: Vec<f64> = non_null.iter().filter_map(|v| v.as_f64()).collect();
            if nums.is_empty() {
                // Empty group, or nothing numeric (SUM over text): NULL.
                Value::Null
            } else if all_int {
                Value::Int(nums.iter().map(|&f| f as i64).sum())
            } else {
                Value::Float(nums.iter().sum())
            }
        }
        AggFunc::Avg => {
            let nums: Vec<f64> = non_null.iter().filter_map(|v| v.as_f64()).collect();
            if nums.is_empty() {
                Value::Null
            } else {
                Value::Float(nums.iter().sum::<f64>() / nums.len() as f64)
            }
        }
        AggFunc::Min => non_null.iter().min().map(|v| (*v).clone()).unwrap_or(Value::Null),
        AggFunc::Max => non_null.iter().max().map(|v| (*v).clone()).unwrap_or(Value::Null),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aqks_relational::{AttrType, RelationSchema};

    /// Small Student/Enrol/Course database mirroring Figure 1's left side.
    fn db() -> Database {
        let mut db = Database::new("uni");
        let mut s = RelationSchema::new("Student");
        s.add_attr("Sid", AttrType::Text)
            .add_attr("Sname", AttrType::Text)
            .add_attr("Age", AttrType::Int);
        s.set_primary_key(["Sid"]);
        db.add_relation(s).unwrap();
        let mut c = RelationSchema::new("Course");
        c.add_attr("Code", AttrType::Text)
            .add_attr("Title", AttrType::Text)
            .add_attr("Credit", AttrType::Float);
        c.set_primary_key(["Code"]);
        db.add_relation(c).unwrap();
        let mut e = RelationSchema::new("Enrol");
        e.add_attr("Sid", AttrType::Text)
            .add_attr("Code", AttrType::Text)
            .add_attr("Grade", AttrType::Text);
        e.set_primary_key(["Sid", "Code"]);
        e.add_foreign_key(["Sid"], "Student", ["Sid"]);
        e.add_foreign_key(["Code"], "Course", ["Code"]);
        db.add_relation(e).unwrap();

        for (sid, name, age) in [("s1", "George", 22), ("s2", "Green", 24), ("s3", "Green", 21)] {
            db.insert("Student", vec![Value::str(sid), Value::str(name), Value::Int(age)]).unwrap();
        }
        for (code, title, credit) in
            [("c1", "Java", 5.0), ("c2", "Database", 4.0), ("c3", "Multimedia", 3.0)]
        {
            db.insert("Course", vec![Value::str(code), Value::str(title), Value::Float(credit)])
                .unwrap();
        }
        for (sid, code, g) in [
            ("s1", "c1", "A"),
            ("s1", "c2", "B"),
            ("s1", "c3", "B"),
            ("s2", "c1", "A"),
            ("s3", "c1", "A"),
            ("s3", "c3", "B"),
        ] {
            db.insert("Enrol", vec![Value::str(sid), Value::str(code), Value::str(g)]).unwrap();
        }
        db
    }

    fn col(q: &str, c: &str) -> ColumnRef {
        ColumnRef::new(q, c)
    }

    /// Q1 as SQAK would issue it (paper's first listing): one merged row.
    #[test]
    fn q1_sqak_style_merges_greens() {
        let stmt = SelectStatement {
            items: vec![
                SelectItem::Column { col: col("S", "Sname"), alias: None },
                SelectItem::Aggregate {
                    func: AggFunc::Sum,
                    arg: col("C", "Credit"),
                    distinct: false,
                    alias: "sumCredit".into(),
                },
            ],
            from: vec![
                TableExpr::Relation { name: "Student".into(), alias: "S".into() },
                TableExpr::Relation { name: "Enrol".into(), alias: "E".into() },
                TableExpr::Relation { name: "Course".into(), alias: "C".into() },
            ],
            predicates: vec![
                Predicate::JoinEq(col("E", "Sid"), col("S", "Sid")),
                Predicate::JoinEq(col("E", "Code"), col("C", "Code")),
                Predicate::Contains(col("S", "Sname"), "Green".into()),
            ],
            group_by: vec![col("S", "Sname")],
            ..Default::default()
        };
        let r = execute(&stmt, &db()).unwrap();
        assert_eq!(r.len(), 1);
        assert_eq!(r.rows[0][1], Value::Float(13.0), "5 + (5+3) merged into 13");
    }

    /// The corrected Q1: grouping by Sid separates the two Greens.
    #[test]
    fn q1_semantic_style_distinguishes_greens() {
        let stmt = SelectStatement {
            items: vec![
                SelectItem::Column { col: col("S", "Sid"), alias: None },
                SelectItem::Aggregate {
                    func: AggFunc::Sum,
                    arg: col("C", "Credit"),
                    distinct: false,
                    alias: "sumCredit".into(),
                },
            ],
            from: vec![
                TableExpr::Relation { name: "Student".into(), alias: "S".into() },
                TableExpr::Relation { name: "Enrol".into(), alias: "E".into() },
                TableExpr::Relation { name: "Course".into(), alias: "C".into() },
            ],
            predicates: vec![
                Predicate::JoinEq(col("E", "Sid"), col("S", "Sid")),
                Predicate::JoinEq(col("E", "Code"), col("C", "Code")),
                Predicate::Contains(col("S", "Sname"), "Green".into()),
            ],
            group_by: vec![col("S", "Sid")],
            ..Default::default()
        };
        let r = execute(&stmt, &db()).unwrap().sorted();
        assert_eq!(r.len(), 2);
        assert_eq!(r.rows[0], vec![Value::str("s2"), Value::Float(5.0)]);
        assert_eq!(r.rows[1], vec![Value::str("s3"), Value::Float(8.0)]);
    }

    #[test]
    fn global_aggregate_without_groupby_returns_one_row() {
        let stmt = SelectStatement {
            items: vec![SelectItem::Aggregate {
                func: AggFunc::Avg,
                arg: col("S", "Age"),
                distinct: false,
                alias: "avgAge".into(),
            }],
            from: vec![TableExpr::Relation { name: "Student".into(), alias: "S".into() }],
            ..Default::default()
        };
        let r = execute(&stmt, &db()).unwrap();
        assert_eq!(r.scalar(), Some(&Value::Float((22.0 + 24.0 + 21.0) / 3.0)));
    }

    #[test]
    fn aggregate_over_empty_input() {
        let stmt = SelectStatement {
            items: vec![
                SelectItem::Aggregate {
                    func: AggFunc::Count,
                    arg: col("S", "Sid"),
                    distinct: false,
                    alias: "n".into(),
                },
                SelectItem::Aggregate {
                    func: AggFunc::Sum,
                    arg: col("S", "Age"),
                    distinct: false,
                    alias: "s".into(),
                },
            ],
            from: vec![TableExpr::Relation { name: "Student".into(), alias: "S".into() }],
            predicates: vec![Predicate::Contains(col("S", "Sname"), "nobody".into())],
            ..Default::default()
        };
        let r = execute(&stmt, &db()).unwrap();
        assert_eq!(r.rows, vec![vec![Value::Int(0), Value::Null]]);
    }

    #[test]
    fn derived_table_in_from() {
        let inner = SelectStatement {
            distinct: true,
            items: vec![SelectItem::Column { col: col("E", "Sid"), alias: None }],
            from: vec![TableExpr::Relation { name: "Enrol".into(), alias: "E".into() }],
            ..Default::default()
        };
        let stmt = SelectStatement {
            items: vec![SelectItem::Aggregate {
                func: AggFunc::Count,
                arg: col("D", "Sid"),
                distinct: false,
                alias: "n".into(),
            }],
            from: vec![TableExpr::Derived { query: Box::new(inner), alias: "D".into() }],
            ..Default::default()
        };
        let r = execute(&stmt, &db()).unwrap();
        assert_eq!(r.scalar(), Some(&Value::Int(3)));
    }

    #[test]
    fn self_join_counts_common_courses() {
        // Courses taken by both s1 (George) and s3 (a Green).
        let stmt = SelectStatement {
            items: vec![SelectItem::Aggregate {
                func: AggFunc::Count,
                arg: col("C", "Code"),
                distinct: false,
                alias: "n".into(),
            }],
            from: vec![
                TableExpr::Relation { name: "Course".into(), alias: "C".into() },
                TableExpr::Relation { name: "Enrol".into(), alias: "E1".into() },
                TableExpr::Relation { name: "Enrol".into(), alias: "E2".into() },
            ],
            predicates: vec![
                Predicate::JoinEq(col("C", "Code"), col("E1", "Code")),
                Predicate::JoinEq(col("C", "Code"), col("E2", "Code")),
                Predicate::Eq(col("E1", "Sid"), Value::str("s1")),
                Predicate::Eq(col("E2", "Sid"), Value::str("s3")),
            ],
            ..Default::default()
        };
        let r = execute(&stmt, &db()).unwrap();
        assert_eq!(r.scalar(), Some(&Value::Int(2)), "c1 and c3 shared");
    }

    #[test]
    fn count_distinct() {
        let stmt = SelectStatement {
            items: vec![SelectItem::Aggregate {
                func: AggFunc::Count,
                arg: col("E", "Sid"),
                distinct: true,
                alias: "n".into(),
            }],
            from: vec![TableExpr::Relation { name: "Enrol".into(), alias: "E".into() }],
            ..Default::default()
        };
        let r = execute(&stmt, &db()).unwrap();
        assert_eq!(r.scalar(), Some(&Value::Int(3)));
    }

    #[test]
    fn min_max_on_strings_and_dates() {
        let stmt = SelectStatement {
            items: vec![
                SelectItem::Aggregate {
                    func: AggFunc::Min,
                    arg: col("S", "Sname"),
                    distinct: false,
                    alias: "lo".into(),
                },
                SelectItem::Aggregate {
                    func: AggFunc::Max,
                    arg: col("S", "Sname"),
                    distinct: false,
                    alias: "hi".into(),
                },
            ],
            from: vec![TableExpr::Relation { name: "Student".into(), alias: "S".into() }],
            ..Default::default()
        };
        let r = execute(&stmt, &db()).unwrap();
        assert_eq!(r.rows[0], vec![Value::str("George"), Value::str("Green")]);
    }

    #[test]
    fn error_on_unknown_relation_and_column() {
        let stmt = SelectStatement {
            items: vec![SelectItem::Column { col: col("X", "a"), alias: None }],
            from: vec![TableExpr::Relation { name: "Nope".into(), alias: "X".into() }],
            ..Default::default()
        };
        assert!(matches!(execute(&stmt, &db()), Err(ExecError::UnknownRelation(_))));

        let stmt = SelectStatement {
            items: vec![SelectItem::Column { col: col("S", "missing"), alias: None }],
            from: vec![TableExpr::Relation { name: "Student".into(), alias: "S".into() }],
            ..Default::default()
        };
        assert!(matches!(execute(&stmt, &db()), Err(ExecError::UnknownColumn(_))));
    }

    #[test]
    fn duplicate_alias_rejected() {
        let stmt = SelectStatement {
            items: vec![SelectItem::Column { col: col("S", "Sid"), alias: None }],
            from: vec![
                TableExpr::Relation { name: "Student".into(), alias: "S".into() },
                TableExpr::Relation { name: "Enrol".into(), alias: "s".into() },
            ],
            ..Default::default()
        };
        assert!(matches!(execute(&stmt, &db()), Err(ExecError::DuplicateAlias(_))));
    }

    #[test]
    fn nested_aggregate_example7_shape() {
        // AVG over a grouped COUNT, paper Example 7 shape on Enrol:
        // average number of students per course = 6 enrolments / 3 courses.
        let inner = SelectStatement {
            items: vec![
                SelectItem::Column { col: col("E", "Code"), alias: None },
                SelectItem::Aggregate {
                    func: AggFunc::Count,
                    arg: col("E", "Sid"),
                    distinct: false,
                    alias: "numSid".into(),
                },
            ],
            from: vec![TableExpr::Relation { name: "Enrol".into(), alias: "E".into() }],
            group_by: vec![col("E", "Code")],
            ..Default::default()
        };
        let outer = SelectStatement {
            items: vec![SelectItem::Aggregate {
                func: AggFunc::Avg,
                arg: col("R", "numSid"),
                distinct: false,
                alias: "avgnumSid".into(),
            }],
            from: vec![TableExpr::Derived { query: Box::new(inner), alias: "R".into() }],
            ..Default::default()
        };
        let r = execute(&outer, &db()).unwrap();
        assert_eq!(r.scalar(), Some(&Value::Float(2.0)));
    }

    /// The greedy join order makes FROM-clause order irrelevant to the
    /// result (and avoids the Part x Supplier cross product a naive
    /// left-to-right fold would build for chain joins).
    #[test]
    fn from_order_does_not_change_results() {
        let base = SelectStatement {
            items: vec![
                SelectItem::Column { col: col("S", "Sid"), alias: None },
                SelectItem::Aggregate {
                    func: AggFunc::Count,
                    arg: col("C", "Code"),
                    distinct: false,
                    alias: "n".into(),
                },
            ],
            from: vec![
                TableExpr::Relation { name: "Student".into(), alias: "S".into() },
                TableExpr::Relation { name: "Course".into(), alias: "C".into() },
                TableExpr::Relation { name: "Enrol".into(), alias: "E".into() },
            ],
            predicates: vec![
                Predicate::JoinEq(col("E", "Sid"), col("S", "Sid")),
                Predicate::JoinEq(col("E", "Code"), col("C", "Code")),
            ],
            group_by: vec![col("S", "Sid")],
            ..Default::default()
        };
        let db = db();
        let reference = execute(&base, &db).unwrap().sorted();
        // Student and Course are not directly joined: with left-to-right
        // folding this order would cross-join them first.
        let mut permuted = base.clone();
        permuted.from.rotate_left(1);
        assert_eq!(execute(&permuted, &db).unwrap().sorted().rows, reference.rows);
        let mut permuted = base;
        permuted.from.swap(0, 2);
        assert_eq!(execute(&permuted, &db).unwrap().sorted().rows, reference.rows);
    }

    #[test]
    fn order_by_and_limit() {
        use crate::ast::OrderKey;
        // Top-2 students by enrolment count, descending.
        let stmt = SelectStatement {
            items: vec![
                SelectItem::Column { col: col("E", "Sid"), alias: None },
                SelectItem::Aggregate {
                    func: AggFunc::Count,
                    arg: col("E", "Code"),
                    distinct: false,
                    alias: "n".into(),
                },
            ],
            from: vec![TableExpr::Relation { name: "Enrol".into(), alias: "E".into() }],
            group_by: vec![col("E", "Sid")],
            order_by: vec![
                OrderKey { column: col("", "n"), desc: true },
                OrderKey { column: col("", "Sid"), desc: false },
            ],
            limit: Some(2),
            ..Default::default()
        };
        let r = execute(&stmt, &db()).unwrap();
        assert_eq!(r.len(), 2);
        assert_eq!(r.rows[0], vec![Value::str("s1"), Value::Int(3)]);
        assert_eq!(r.rows[1], vec![Value::str("s3"), Value::Int(2)]);
        // Rendering includes the clauses.
        let text = stmt.to_string();
        assert!(text.contains("ORDER BY .n DESC, .Sid") || text.contains("ORDER BY"), "{text}");
        assert!(text.contains("LIMIT 2"), "{text}");
    }

    #[test]
    fn order_by_unknown_column_errors() {
        use crate::ast::OrderKey;
        let stmt = SelectStatement {
            items: vec![SelectItem::Column { col: col("S", "Sid"), alias: None }],
            from: vec![TableExpr::Relation { name: "Student".into(), alias: "S".into() }],
            order_by: vec![OrderKey { column: col("S", "nope"), desc: false }],
            ..Default::default()
        };
        assert!(matches!(execute(&stmt, &db()), Err(ExecError::UnknownColumn(_))));
    }

    #[test]
    fn sum_over_text_is_null() {
        let stmt = SelectStatement {
            items: vec![SelectItem::Aggregate {
                func: AggFunc::Sum,
                arg: col("S", "Sname"),
                distinct: false,
                alias: "s".into(),
            }],
            from: vec![TableExpr::Relation { name: "Student".into(), alias: "S".into() }],
            ..Default::default()
        };
        let r = execute(&stmt, &db()).unwrap();
        assert_eq!(r.scalar(), Some(&Value::Null));
    }

    #[test]
    fn null_join_keys_never_match() {
        let mut db = db();
        db.insert("Enrol", vec![Value::Null, Value::str("c2"), Value::str("C")]).unwrap();
        let stmt = SelectStatement {
            items: vec![SelectItem::Aggregate {
                func: AggFunc::Count,
                arg: col("E", "Code"),
                distinct: false,
                alias: "n".into(),
            }],
            from: vec![
                TableExpr::Relation { name: "Student".into(), alias: "S".into() },
                TableExpr::Relation { name: "Enrol".into(), alias: "E".into() },
            ],
            predicates: vec![Predicate::JoinEq(col("S", "Sid"), col("E", "Sid"))],
            ..Default::default()
        };
        let r = execute(&stmt, &db).unwrap();
        assert_eq!(r.scalar(), Some(&Value::Int(6)), "NULL Sid row must not join");
    }
}
