//! Structured diagnostics emitted by the lint passes.

use std::fmt;

use aqks_sqlgen::{render_spanned, SelectStatement, SpanKind};

/// How serious a diagnostic is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Suspicious but not provably wrong (e.g. `contains` on a date).
    Warning,
    /// The statement is malformed or computes a provably wrong answer.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Warning => write!(f, "warning"),
            Severity::Error => write!(f, "error"),
        }
    }
}

/// One finding of a lint pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Stable code (`AQ-P1` … `AQ-P5`).
    pub code: &'static str,
    /// Severity.
    pub severity: Severity,
    /// Name of the pass that produced it.
    pub pass: &'static str,
    /// Human-readable description.
    pub message: String,
    /// Derived-table chain from the root statement to the statement the
    /// finding is about (matches [`SelectStatement::walk`] paths).
    pub path: Vec<usize>,
    /// Clause element within that statement, when the finding points at
    /// one.
    pub clause: Option<SpanKind>,
}

impl Diagnostic {
    /// Creates an error diagnostic.
    pub fn error(
        code: &'static str,
        pass: &'static str,
        path: &[usize],
        clause: Option<SpanKind>,
        message: impl Into<String>,
    ) -> Diagnostic {
        Diagnostic {
            code,
            severity: Severity::Error,
            pass,
            message: message.into(),
            path: path.to_vec(),
            clause,
        }
    }

    /// Creates a warning diagnostic.
    pub fn warning(
        code: &'static str,
        pass: &'static str,
        path: &[usize],
        clause: Option<SpanKind>,
        message: impl Into<String>,
    ) -> Diagnostic {
        Diagnostic {
            severity: Severity::Warning,
            ..Diagnostic::error(code, pass, path, clause, message)
        }
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} [{}/{}]: {}", self.severity, self.code, self.pass, self.message)
    }
}

/// All findings for one analyzed statement tree.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Report {
    /// Findings in pass order, root statement first.
    pub diagnostics: Vec<Diagnostic>,
}

impl Report {
    /// True when no findings at all were produced.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// Number of error-severity findings.
    pub fn error_count(&self) -> usize {
        self.diagnostics.iter().filter(|d| d.severity == Severity::Error).count()
    }

    /// True when at least one finding is an error.
    pub fn has_errors(&self) -> bool {
        self.error_count() > 0
    }

    /// Error-severity findings.
    pub fn errors(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics.iter().filter(|d| d.severity == Severity::Error)
    }

    /// True when some finding carries the given code.
    pub fn has_code(&self, code: &str) -> bool {
        self.diagnostics.iter().any(|d| d.code == code)
    }

    /// Renders the findings against the statement they were produced for,
    /// quoting the SQL fragment each one points at.
    pub fn render(&self, stmt: &SelectStatement) -> String {
        let (sql, spans) = render_spanned(stmt);
        let mut out = String::new();
        for d in &self.diagnostics {
            out.push_str(&d.to_string());
            let span =
                d.clause.and_then(|kind| spans.iter().find(|s| s.path == d.path && s.kind == kind));
            if let Some(s) = span {
                out.push_str(&format!("\n  --> {}", &sql[s.start..s.end]));
            }
            out.push('\n');
        }
        out
    }

    /// One-line summary: `2 errors, 1 warning`.
    pub fn summary(&self) -> String {
        let errors = self.error_count();
        let warnings = self.diagnostics.len() - errors;
        let plural = |n: usize| if n == 1 { "" } else { "s" };
        format!("{errors} error{}, {warnings} warning{}", plural(errors), plural(warnings))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_counts() {
        let mut r = Report::default();
        assert!(r.is_clean() && !r.has_errors());
        r.diagnostics.push(Diagnostic::warning("AQ-P2", "types", &[], None, "w"));
        assert!(!r.is_clean() && !r.has_errors());
        r.diagnostics.push(Diagnostic::error("AQ-P5", "duplicates", &[0], None, "e"));
        assert!(r.has_errors());
        assert_eq!(r.error_count(), 1);
        assert!(r.has_code("AQ-P5") && !r.has_code("AQ-P1"));
        assert_eq!(r.summary(), "1 error, 1 warning");
    }
}
