//! Typed values stored in relations.
//!
//! `Value` is deliberately small: the paper's schemas (Table 2) only need
//! integers, floating-point numbers, text, and dates. Values are totally
//! ordered and hashable so they can serve directly as join keys, group-by
//! keys, and MIN/MAX operands in the executor.

use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};

/// A simple calendar date (no time component), ordered chronologically.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Date {
    /// Four-digit year.
    pub year: i32,
    /// Month, 1-12.
    pub month: u8,
    /// Day of month, 1-31.
    pub day: u8,
}

impl Date {
    /// Creates a date. Panics (debug assertion) on out-of-range month/day;
    /// dataset generators only produce valid dates.
    pub fn new(year: i32, month: u8, day: u8) -> Self {
        debug_assert!((1..=12).contains(&month) && (1..=31).contains(&day));
        Date { year, month, day }
    }
}

impl fmt::Display for Date {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:04}-{:02}-{:02}", self.year, self.month, self.day)
    }
}

/// A single attribute value.
///
/// Total order (used by MIN/MAX and deterministic sorting):
/// `Null < Int/Float (numeric order) < Str (lexicographic) < Date`.
/// `Int` and `Float` compare numerically against each other so that e.g.
/// `SUM` results mixing the two still order sensibly.
#[derive(Debug, Clone)]
pub enum Value {
    /// SQL NULL. Ignored by aggregates per SQL semantics.
    Null,
    /// 64-bit integer.
    Int(i64),
    /// 64-bit float. NaN is normalized on hash/compare.
    Float(f64),
    /// UTF-8 text.
    Str(String),
    /// Calendar date.
    Date(Date),
}

impl Value {
    /// Shorthand for `Value::Str(s.into())`.
    pub fn str(s: impl Into<String>) -> Value {
        Value::Str(s.into())
    }

    /// True if this is `Value::Null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Numeric view of the value, if it is numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// Case-insensitive containment test used by the `contains` predicate
    /// the paper puts in generated WHERE clauses. Non-string values match
    /// on their display form (so a numeric id can be matched by keyword).
    pub fn contains_ci(&self, needle_lower: &str) -> bool {
        match self {
            Value::Null => false,
            Value::Str(s) => s.to_lowercase().contains(needle_lower),
            other => other.to_string().to_lowercase().contains(needle_lower),
        }
    }

    /// A short name for the runtime type, used in error messages.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Int(_) => "int",
            Value::Float(_) => "float",
            Value::Str(_) => "text",
            Value::Date(_) => "date",
        }
    }

    fn rank(&self) -> u8 {
        match self {
            Value::Null => 0,
            Value::Int(_) | Value::Float(_) => 1,
            Value::Str(_) => 2,
            Value::Date(_) => 3,
        }
    }

    /// Canonical bits for hashing floats: NaN collapses to one pattern and
    /// -0.0 to +0.0 so that `Eq`/`Hash` agree with `cmp`.
    fn float_bits(f: f64) -> u64 {
        if f.is_nan() {
            f64::NAN.to_bits()
        } else if f == 0.0 {
            0.0f64.to_bits()
        } else {
            f.to_bits()
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for Value {}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    fn cmp(&self, other: &Self) -> Ordering {
        use Value::*;
        match (self, other) {
            (Null, Null) => Ordering::Equal,
            (Int(a), Int(b)) => a.cmp(b),
            (Float(a), Float(b)) => a.partial_cmp(b).unwrap_or_else(|| {
                // NaN sorts above all other floats, NaN == NaN.
                match (a.is_nan(), b.is_nan()) {
                    (true, true) => Ordering::Equal,
                    (true, false) => Ordering::Greater,
                    (false, true) => Ordering::Less,
                    (false, false) => unreachable!(),
                }
            }),
            (Int(a), Float(_)) => Float(*a as f64).cmp(other),
            (Float(_), Int(b)) => self.cmp(&Float(*b as f64)),
            (Str(a), Str(b)) => a.cmp(b),
            (Date(a), Date(b)) => a.cmp(b),
            _ => self.rank().cmp(&other.rank()),
        }
    }
}

impl Hash for Value {
    fn hash<H: Hasher>(&self, state: &mut H) {
        match self {
            Value::Null => state.write_u8(0),
            Value::Int(i) => {
                // Hash ints as floats would hash, so Int(2) == Float(2.0)
                // implies equal hashes.
                state.write_u8(1);
                state.write_u64(Value::float_bits(*i as f64));
            }
            Value::Float(f) => {
                state.write_u8(1);
                state.write_u64(Value::float_bits(*f));
            }
            Value::Str(s) => {
                state.write_u8(2);
                s.hash(state);
            }
            Value::Date(d) => {
                state.write_u8(3);
                d.hash(state);
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "NULL"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => {
                if x.fract() == 0.0 && x.abs() < 1e15 {
                    write!(f, "{:.1}", x)
                } else {
                    write!(f, "{x}")
                }
            }
            Value::Str(s) => write!(f, "{s}"),
            Value::Date(d) => write!(f, "{d}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;

    fn hash_of(v: &Value) -> u64 {
        let mut h = DefaultHasher::new();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn ordering_across_types() {
        let mut vals = [
            Value::str("abc"),
            Value::Int(5),
            Value::Null,
            Value::Date(Date::new(2011, 6, 13)),
            Value::Float(2.5),
        ];
        vals.sort();
        assert_eq!(vals[0], Value::Null);
        assert_eq!(vals[1], Value::Float(2.5));
        assert_eq!(vals[2], Value::Int(5));
        assert_eq!(vals[3], Value::str("abc"));
    }

    #[test]
    fn int_float_cross_equality_and_hash() {
        assert_eq!(Value::Int(4), Value::Float(4.0));
        assert_eq!(hash_of(&Value::Int(4)), hash_of(&Value::Float(4.0)));
        assert!(Value::Int(3) < Value::Float(3.5));
        assert!(Value::Float(2.5) < Value::Int(3));
    }

    #[test]
    fn nan_and_negative_zero_are_canonical() {
        assert_eq!(Value::Float(f64::NAN), Value::Float(f64::NAN));
        assert_eq!(Value::Float(0.0), Value::Float(-0.0));
        assert_eq!(hash_of(&Value::Float(0.0)), hash_of(&Value::Float(-0.0)));
        assert_eq!(hash_of(&Value::Float(f64::NAN)), hash_of(&Value::Float(-f64::NAN)));
        assert!(Value::Float(f64::NAN) > Value::Float(1e300));
    }

    #[test]
    fn contains_is_case_insensitive() {
        let v = Value::str("Indian Black Chocolate");
        assert!(v.contains_ci("black choc"));
        assert!(!v.contains_ci("white"));
        assert!(Value::Int(1234).contains_ci("23"));
        assert!(!Value::Null.contains_ci(""));
    }

    #[test]
    fn date_display_and_order() {
        let a = Date::new(1994, 5, 1);
        let b = Date::new(2011, 6, 13);
        assert!(a < b);
        assert_eq!(b.to_string(), "2011-06-13");
    }

    #[test]
    fn float_display_shows_decimal_for_whole_numbers() {
        assert_eq!(Value::Float(5.0).to_string(), "5.0");
        assert_eq!(Value::Float(4.25).to_string(), "4.25");
    }
}
