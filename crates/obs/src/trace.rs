//! The snapshot a [`crate::Recorder`] produces: a span tree with
//! self/total wall times and an aggregated metrics map, renderable as a
//! text tree or as Chrome `trace_event` JSON.

use std::collections::BTreeMap;

use crate::recorder::RawSpan;

/// One span in the finished tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanNode {
    /// Span name (a pipeline phase, an operator, a lint pass, …).
    pub name: String,
    /// Start offset from the trace epoch, nanoseconds.
    pub start_ns: u64,
    /// Inclusive wall time (this span plus its children), nanoseconds.
    pub total_ns: u64,
    /// Exclusive wall time (total minus children totals), nanoseconds.
    pub self_ns: u64,
    /// Counters attached to this span, in first-recorded order.
    pub counters: Vec<(String, u64)>,
    /// Child spans in start order.
    pub children: Vec<SpanNode>,
}

impl SpanNode {
    /// Inclusive wall time in microseconds.
    pub fn total_us(&self) -> f64 {
        self.total_ns as f64 / 1000.0
    }

    /// Exclusive wall time in microseconds.
    pub fn self_us(&self) -> f64 {
        self.self_ns as f64 / 1000.0
    }

    /// The value of one counter on this span, if recorded.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters.iter().find(|(k, _)| k == name).map(|(_, v)| *v)
    }

    fn visit<'a>(&'a self, f: &mut impl FnMut(&'a SpanNode)) {
        f(self);
        for c in &self.children {
            c.visit(f);
        }
    }
}

/// A finished trace: the span forest plus a metrics snapshot aggregating
/// every span-attached and recorder-level counter.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PipelineTrace {
    /// Top-level spans (usually exactly one per traced call).
    pub roots: Vec<SpanNode>,
    /// All counters, summed across spans and merged with recorder-level
    /// counters, name-sorted.
    pub counters: BTreeMap<String, u64>,
}

impl PipelineTrace {
    pub(crate) fn build(raw: Vec<RawSpan>, mut counters: BTreeMap<String, u64>) -> PipelineTrace {
        let mut children: Vec<Vec<usize>> = vec![Vec::new(); raw.len()];
        let mut root_ids = Vec::new();
        for (i, s) in raw.iter().enumerate() {
            // Parents are always recorded before their children, so the
            // parent id is valid and smaller than `i`.
            match s.parent {
                Some(p) => children[p as usize].push(i),
                None => root_ids.push(i),
            }
        }
        fn node(
            i: usize,
            raw: &[RawSpan],
            children: &[Vec<usize>],
            agg: &mut BTreeMap<String, u64>,
        ) -> SpanNode {
            let kids: Vec<SpanNode> =
                children[i].iter().map(|&c| node(c, raw, children, agg)).collect();
            let total_ns = raw[i].dur_ns.unwrap_or(0);
            let child_sum: u64 = kids.iter().map(|k| k.total_ns).sum();
            for (k, v) in &raw[i].counters {
                *agg.entry(k.to_string()).or_default() += v;
            }
            SpanNode {
                name: raw[i].name.to_string(),
                start_ns: raw[i].start_ns,
                total_ns,
                self_ns: total_ns.saturating_sub(child_sum),
                counters: raw[i].counters.iter().map(|(k, v)| (k.to_string(), *v)).collect(),
                children: kids,
            }
        }
        let roots = root_ids.iter().map(|&i| node(i, &raw, &children, &mut counters)).collect();
        PipelineTrace { roots, counters }
    }

    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.roots.is_empty()
    }

    /// Number of spans named `name`, anywhere in the forest.
    pub fn span_count(&self, name: &str) -> usize {
        let mut n = 0;
        for r in &self.roots {
            r.visit(&mut |s| {
                if s.name == name {
                    n += 1;
                }
            });
        }
        n
    }

    /// The first span named `name`, depth-first.
    pub fn find(&self, name: &str) -> Option<&SpanNode> {
        let mut found = None;
        for r in &self.roots {
            r.visit(&mut |s| {
                if found.is_none() && s.name == name {
                    found = Some(s);
                }
            });
        }
        found
    }

    /// Total spans in the forest.
    pub fn len(&self) -> usize {
        let mut n = 0;
        for r in &self.roots {
            r.visit(&mut |_| n += 1);
        }
        n
    }

    /// Renders the span tree with per-span self/total wall time and
    /// counters, followed by the aggregated counter snapshot.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for r in &self.roots {
            render_node(r, "", true, true, &mut out);
        }
        if !self.counters.is_empty() {
            let parts: Vec<String> =
                self.counters.iter().map(|(k, v)| format!("{k}={v}")).collect();
            out.push_str(&format!("counters: {}\n", parts.join(" ")));
        }
        out
    }

    /// Serializes the trace as Chrome `trace_event` JSON ("X" complete
    /// events, timestamps in microseconds), loadable in
    /// `chrome://tracing` and Perfetto.
    pub fn to_chrome_json(&self) -> String {
        let mut events: Vec<String> = Vec::new();
        for r in &self.roots {
            r.visit(&mut |s| {
                let mut args: Vec<String> = s
                    .counters
                    .iter()
                    .map(|(k, v)| format!("\"{}\":{}", escape(k), v))
                    .collect();
                args.push(format!("\"self_us\":{:.3}", s.self_us()));
                events.push(format!(
                    "{{\"name\":\"{}\",\"cat\":\"aqks\",\"ph\":\"X\",\"ts\":{:.3},\"dur\":{:.3},\"pid\":1,\"tid\":1,\"args\":{{{}}}}}",
                    escape(&s.name),
                    s.start_ns as f64 / 1000.0,
                    s.total_us(),
                    args.join(",")
                ));
            });
        }
        format!("{{\"traceEvents\":[{}],\"displayTimeUnit\":\"ms\"}}\n", events.join(",\n"))
    }

    /// Serializes the trace as a standalone JSON document (nested spans
    /// plus the counter snapshot) — the CLI's `--trace=json` output.
    pub fn to_json(&self) -> String {
        fn span_json(s: &SpanNode, out: &mut String) {
            out.push_str(&format!(
                "{{\"name\":\"{}\",\"total_us\":{:.3},\"self_us\":{:.3}",
                escape(&s.name),
                s.total_us(),
                s.self_us()
            ));
            if !s.counters.is_empty() {
                let parts: Vec<String> =
                    s.counters.iter().map(|(k, v)| format!("\"{}\":{}", escape(k), v)).collect();
                out.push_str(&format!(",\"counters\":{{{}}}", parts.join(",")));
            }
            if !s.children.is_empty() {
                out.push_str(",\"children\":[");
                for (i, c) in s.children.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    span_json(c, out);
                }
                out.push(']');
            }
            out.push('}');
        }
        let mut out = String::from("{\"spans\":[");
        for (i, r) in self.roots.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            span_json(r, &mut out);
        }
        out.push_str("],\"counters\":{");
        let parts: Vec<String> =
            self.counters.iter().map(|(k, v)| format!("\"{}\":{}", escape(k), v)).collect();
        out.push_str(&parts.join(","));
        out.push_str("}}\n");
        out
    }
}

fn render_node(s: &SpanNode, prefix: &str, last: bool, root: bool, out: &mut String) {
    let (branch, child_prefix) = if root {
        (String::new(), String::new())
    } else if last {
        (format!("{prefix}└─ "), format!("{prefix}   "))
    } else {
        (format!("{prefix}├─ "), format!("{prefix}│  "))
    };
    out.push_str(&branch);
    out.push_str(&s.name);
    out.push_str(&format!("  total={} self={}", fmt_ns(s.total_ns), fmt_ns(s.self_ns)));
    if !s.counters.is_empty() {
        let parts: Vec<String> = s.counters.iter().map(|(k, v)| format!("{k}={v}")).collect();
        out.push_str(&format!(" [{}]", parts.join(" ")));
    }
    out.push('\n');
    let n = s.children.len();
    for (i, c) in s.children.iter().enumerate() {
        render_node(c, &child_prefix, i + 1 == n, false, out);
    }
}

/// Human-friendly duration: µs below 1 ms, ms below 1 s.
fn fmt_ns(ns: u64) -> String {
    let us = ns as f64 / 1000.0;
    if us < 1000.0 {
        format!("{us:.1}µs")
    } else if us < 1_000_000.0 {
        format!("{:.2}ms", us / 1000.0)
    } else {
        format!("{:.3}s", us / 1e6)
    }
}

pub(crate) fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use crate::Recorder;

    fn sample() -> crate::PipelineTrace {
        let rec = Recorder::enabled();
        {
            let root = rec.span("answer");
            root.add("k", 1);
            {
                let m = rec.span("match");
                m.add("index.probes", 3);
            }
            let _e = rec.span("exec");
        }
        rec.take()
    }

    #[test]
    fn render_text_shows_tree_times_and_counters() {
        let text = sample().render_text();
        assert!(text.starts_with("answer  total="), "{text}");
        assert!(text.contains("├─ match"), "{text}");
        assert!(text.contains("└─ exec"), "{text}");
        assert!(text.contains("[index.probes=3]"), "{text}");
        assert!(text.contains("counters: index.probes=3 k=1"), "{text}");
    }

    #[test]
    fn chrome_json_is_valid_and_carries_all_spans() {
        let t = sample();
        let json = t.to_chrome_json();
        crate::json::validate(&json).expect("chrome trace is well-formed JSON");
        assert_eq!(json.matches("\"ph\":\"X\"").count(), t.len());
        assert!(json.contains("\"name\":\"match\""), "{json}");
        assert!(json.contains("\"traceEvents\""), "{json}");
    }

    #[test]
    fn structured_json_is_valid() {
        let json = sample().to_json();
        crate::json::validate(&json).expect("trace json is well-formed");
        assert!(json.contains("\"counters\""), "{json}");
    }

    #[test]
    fn self_time_excludes_children() {
        let t = sample();
        let root = &t.roots[0];
        let kids: u64 = root.children.iter().map(|c| c.total_ns).sum();
        assert_eq!(root.self_ns, root.total_ns - kids);
    }

    #[test]
    fn names_are_escaped_in_json() {
        let rec = Recorder::enabled();
        {
            let _s = rec.span("weird \"name\"\\path");
        }
        let json = rec.take().to_chrome_json();
        crate::json::validate(&json).expect("escaped JSON parses");
    }
}
