//! Denormalizers producing Table 7's unnormalized schemas.
//!
//! * [`denormalize_tpch`] — TPCH′: `Lineitem ⋈ Part ⋈ Supplier ⋈ Order`
//!   collapses into one wide `Ordering` relation (with the supplier's
//!   nation/region keys inlined), `Customer` additionally inlines its
//!   nation's `regionkey`, and `Nation` loses `regionkey`.
//! * [`denormalize_acmdl`] — ACMDL′: `Paper ⋈ Write ⋈ Author` becomes
//!   `PaperAuthor`; `Editor ⋈ Edit ⋈ Proceeding` becomes
//!   `EditorProceeding`; `Publisher` survives unchanged.
//!
//! Each unnormalized relation declares the functional dependencies that
//! expose its redundancy, plus the entity-name hints Algorithm 1 uses to
//! name the relations of the normalized view (`Part`, `Supplier`, …) the
//! way the paper names `Student'`/`Enrol'`/`Course'`.

use std::collections::HashMap;

use aqks_relational::{AttrType, Database, RelationSchema, Row, Value};

/// Index the rows of `relation` by the values of `key` attributes.
fn index_by<'a>(db: &'a Database, relation: &str, key: &[&str]) -> HashMap<Vec<Value>, &'a Row> {
    let t = db.table(relation).unwrap_or_else(|| panic!("relation {relation}"));
    let idx: Vec<usize> = key.iter().map(|k| t.schema.attr_index(k).expect("key attr")).collect();
    t.rows().iter().map(|r| (idx.iter().map(|&i| r[i].clone()).collect(), r)).collect()
}

fn get<'a>(db: &'a Database, relation: &str) -> &'a aqks_relational::Table {
    db.table(relation).unwrap_or_else(|| panic!("relation {relation}"))
}

fn attr(t: &aqks_relational::Table, row: &Row, name: &str) -> Value {
    row[t.schema.attr_index(name).expect("attr")].clone()
}

/// Builds the TPCH′ database of Table 7 from a normalized TPC-H database.
pub fn denormalize_tpch(tpch: &Database) -> Database {
    let mut db = Database::new("tpch-prime");

    // --- Schemas -----------------------------------------------------------
    let mut r = RelationSchema::new("Ordering");
    for (name, ty) in [
        ("partkey", AttrType::Int),
        ("suppkey", AttrType::Int),
        ("orderkey", AttrType::Int),
        ("pname", AttrType::Text),
        ("type", AttrType::Text),
        ("size", AttrType::Int),
        ("retailprice", AttrType::Float),
        ("sname", AttrType::Text),
        ("nationkey", AttrType::Int),
        ("regionkey", AttrType::Int),
        ("acctbal", AttrType::Float),
        ("custkey", AttrType::Int),
        ("amount", AttrType::Float),
        ("date", AttrType::Date),
        ("priority", AttrType::Text),
        ("quantity", AttrType::Int),
    ] {
        r.add_attr(name, ty);
    }
    r.set_primary_key(["partkey", "suppkey", "orderkey"]);
    r.add_foreign_key(["nationkey"], "Nation", ["nationkey"]);
    r.add_foreign_key(["regionkey"], "Region", ["regionkey"]);
    r.add_foreign_key(["custkey"], "Customer", ["custkey"]);
    r.add_fd(["partkey"], ["pname", "type", "size", "retailprice"]);
    r.add_fd(["suppkey"], ["sname", "nationkey", "acctbal"]);
    r.add_fd(["nationkey"], ["regionkey"]);
    r.add_fd(["orderkey"], ["custkey", "amount", "date", "priority"]);
    r.name_entity(["partkey"], "Part");
    r.name_entity(["suppkey"], "Supplier");
    r.name_entity(["nationkey"], "Nation");
    r.name_entity(["orderkey"], "Order");
    r.name_entity(["partkey", "suppkey", "orderkey"], "Lineitem");
    db.add_relation(r).expect("static dataset builder");

    let mut r = RelationSchema::new("Customer");
    r.add_attr("custkey", AttrType::Int)
        .add_attr("cname", AttrType::Text)
        .add_attr("nationkey", AttrType::Int)
        .add_attr("regionkey", AttrType::Int)
        .add_attr("mktsegment", AttrType::Text);
    r.set_primary_key(["custkey"]);
    r.add_foreign_key(["nationkey"], "Nation", ["nationkey"]);
    r.add_foreign_key(["regionkey"], "Region", ["regionkey"]);
    r.add_fd(["nationkey"], ["regionkey"]);
    r.name_entity(["custkey"], "Customer");
    r.name_entity(["nationkey"], "Nation");
    db.add_relation(r).expect("static dataset builder");

    let mut r = RelationSchema::new("Nation");
    r.add_attr("nationkey", AttrType::Int).add_attr("nname", AttrType::Text);
    r.set_primary_key(["nationkey"]);
    db.add_relation(r).expect("static dataset builder");

    let mut r = RelationSchema::new("Region");
    r.add_attr("regionkey", AttrType::Int).add_attr("rname", AttrType::Text);
    r.set_primary_key(["regionkey"]);
    db.add_relation(r).expect("static dataset builder");

    // --- Data ---------------------------------------------------------------
    let parts = index_by(tpch, "Part", &["partkey"]);
    let supps = index_by(tpch, "Supplier", &["suppkey"]);
    let orders = index_by(tpch, "Order", &["orderkey"]);
    let nations = index_by(tpch, "Nation", &["nationkey"]);
    let (pt, st, ot, nt, ct) = (
        get(tpch, "Part"),
        get(tpch, "Supplier"),
        get(tpch, "Order"),
        get(tpch, "Nation"),
        get(tpch, "Customer"),
    );

    for li in get(tpch, "Lineitem").rows() {
        let part = parts[&vec![li[0].clone()]];
        let supp = supps[&vec![li[1].clone()]];
        let order = orders[&vec![li[2].clone()]];
        let nation = nations[&vec![attr(st, supp, "nationkey")]];
        db.insert(
            "Ordering",
            vec![
                li[0].clone(),
                li[1].clone(),
                li[2].clone(),
                attr(pt, part, "pname"),
                attr(pt, part, "type"),
                attr(pt, part, "size"),
                attr(pt, part, "retailprice"),
                attr(st, supp, "sname"),
                attr(st, supp, "nationkey"),
                attr(nt, nation, "regionkey"),
                attr(st, supp, "acctbal"),
                attr(ot, order, "custkey"),
                attr(ot, order, "amount"),
                attr(ot, order, "date"),
                attr(ot, order, "priority"),
                li[3].clone(),
            ],
        )
        .expect("static dataset builder");
    }

    for c in ct.rows() {
        let nation = nations[&vec![attr(ct, c, "nationkey")]];
        db.insert(
            "Customer",
            vec![
                attr(ct, c, "custkey"),
                attr(ct, c, "cname"),
                attr(ct, c, "nationkey"),
                attr(nt, nation, "regionkey"),
                attr(ct, c, "mktsegment"),
            ],
        )
        .expect("static dataset builder");
    }
    for n in nt.rows() {
        db.insert("Nation", vec![attr(nt, n, "nationkey"), attr(nt, n, "nname")])
            .expect("static dataset builder");
    }
    for r in get(tpch, "Region").rows() {
        db.insert("Region", r.clone()).expect("static dataset builder");
    }

    db.validate().expect("TPCH' is consistent");
    db
}

/// Builds the ACMDL′ database of Table 7 from a normalized ACMDL database.
pub fn denormalize_acmdl(acmdl: &Database) -> Database {
    let mut db = Database::new("acmdl-prime");

    let mut r = RelationSchema::new("PaperAuthor");
    r.add_attr("paperid", AttrType::Int)
        .add_attr("authorid", AttrType::Int)
        .add_attr("procid", AttrType::Int)
        .add_attr("date", AttrType::Date)
        .add_attr("title", AttrType::Text)
        .add_attr("fname", AttrType::Text)
        .add_attr("lname", AttrType::Text);
    r.set_primary_key(["paperid", "authorid"]);
    r.add_fd(["paperid"], ["procid", "date", "title"]);
    r.add_fd(["authorid"], ["fname", "lname"]);
    r.name_entity(["paperid"], "Paper");
    r.name_entity(["authorid"], "Author");
    r.name_entity(["paperid", "authorid"], "Write");
    db.add_relation(r).expect("static dataset builder");

    let mut r = RelationSchema::new("EditorProceeding");
    r.add_attr("editorid", AttrType::Int)
        .add_attr("procid", AttrType::Int)
        .add_attr("fname", AttrType::Text)
        .add_attr("lname", AttrType::Text)
        .add_attr("acronym", AttrType::Text)
        .add_attr("title", AttrType::Text)
        .add_attr("date", AttrType::Date)
        .add_attr("pages", AttrType::Int)
        .add_attr("publisherid", AttrType::Int);
    r.set_primary_key(["editorid", "procid"]);
    r.add_foreign_key(["publisherid"], "Publisher", ["publisherid"]);
    r.add_fd(["editorid"], ["fname", "lname"]);
    r.add_fd(["procid"], ["acronym", "title", "date", "pages", "publisherid"]);
    r.name_entity(["editorid"], "Editor");
    r.name_entity(["procid"], "Proceeding");
    r.name_entity(["editorid", "procid"], "Edit");
    db.add_relation(r).expect("static dataset builder");

    let mut r = RelationSchema::new("Publisher");
    r.add_attr("publisherid", AttrType::Int)
        .add_attr("code", AttrType::Text)
        .add_attr("name", AttrType::Text);
    r.set_primary_key(["publisherid"]);
    db.add_relation(r).expect("static dataset builder");

    // --- Data ----------------------------------------------------------------
    let papers = index_by(acmdl, "Paper", &["paperid"]);
    let authors = index_by(acmdl, "Author", &["authorid"]);
    let editors = index_by(acmdl, "Editor", &["editorid"]);
    let procs = index_by(acmdl, "Proceeding", &["procid"]);
    let (pt, at, et, prt) =
        (get(acmdl, "Paper"), get(acmdl, "Author"), get(acmdl, "Editor"), get(acmdl, "Proceeding"));

    for w in get(acmdl, "Write").rows() {
        let paper = papers[&vec![w[0].clone()]];
        let author = authors[&vec![w[1].clone()]];
        db.insert(
            "PaperAuthor",
            vec![
                w[0].clone(),
                w[1].clone(),
                attr(pt, paper, "procid"),
                attr(pt, paper, "date"),
                attr(pt, paper, "ptitle"),
                attr(at, author, "fname"),
                attr(at, author, "lname"),
            ],
        )
        .expect("static dataset builder");
    }
    for e in get(acmdl, "Edit").rows() {
        let editor = editors[&vec![e[0].clone()]];
        let proc_ = procs[&vec![e[1].clone()]];
        db.insert(
            "EditorProceeding",
            vec![
                e[0].clone(),
                e[1].clone(),
                attr(et, editor, "fname"),
                attr(et, editor, "lname"),
                attr(prt, proc_, "acronym"),
                attr(prt, proc_, "title"),
                attr(prt, proc_, "date"),
                attr(prt, proc_, "pages"),
                attr(prt, proc_, "publisherid"),
            ],
        )
        .expect("static dataset builder");
    }
    for p in get(acmdl, "Publisher").rows() {
        db.insert("Publisher", p.clone()).expect("static dataset builder");
    }

    db.validate().expect("ACMDL' is consistent");
    db
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{acmdl, tpch};
    use aqks_relational::NormalizedView;

    #[test]
    fn tpch_prime_matches_lineitem_count() {
        let base = tpch::generate_tpch(&tpch::TpchConfig::small());
        let prime = denormalize_tpch(&base);
        assert_eq!(prime.table("Ordering").unwrap().len(), base.table("Lineitem").unwrap().len());
        assert!(!NormalizedView::is_normalized(&prime.schema()));
    }

    #[test]
    fn tpch_prime_normalized_view_recovers_original_shape() {
        let base = tpch::generate_tpch(&tpch::TpchConfig::small());
        let prime = denormalize_tpch(&base);
        let view = NormalizedView::build(&prime.schema());
        // Part, Supplier, Nation, Order, Lineitem, Customer, Region.
        let names: Vec<&str> = view.relations.iter().map(|r| r.schema.name.as_str()).collect();
        for expected in ["Part", "Supplier", "Nation", "Order", "Lineitem", "Customer", "Region"] {
            assert!(names.contains(&expected), "missing {expected} in {names:?}");
        }
        assert_eq!(view.relations.len(), 7, "{names:?}");

        // The merged Nation carries nname and regionkey from three sources.
        let nation = view.relation("Nation").unwrap();
        assert!(nation.schema.attr_index("nname").is_some());
        assert!(nation.schema.attr_index("regionkey").is_some());
        assert!(nation.sources.len() >= 3, "{:?}", nation.sources);
    }

    #[test]
    fn acmdl_prime_normalized_view_recovers_original_shape() {
        let base = acmdl::generate_acmdl(&acmdl::AcmdlConfig::small());
        let prime = denormalize_acmdl(&base);
        let view = NormalizedView::build(&prime.schema());
        let names: Vec<&str> = view.relations.iter().map(|r| r.schema.name.as_str()).collect();
        for expected in ["Paper", "Author", "Write", "Editor", "Proceeding", "Edit", "Publisher"] {
            assert!(names.contains(&expected), "missing {expected} in {names:?}");
        }
        assert_eq!(view.relations.len(), 7, "{names:?}");

        // Write' keeps the original key, so its projection needs no DISTINCT.
        let write = view.relation("Write").unwrap();
        assert!(!write.sources[0].distinct);
        // Paper' is a lossy projection: DISTINCT required.
        let paper = view.relation("Paper").unwrap();
        assert!(paper.sources[0].distinct);
    }

    #[test]
    fn acmdl_prime_row_counts() {
        let base = acmdl::generate_acmdl(&acmdl::AcmdlConfig::small());
        let prime = denormalize_acmdl(&base);
        assert_eq!(prime.table("PaperAuthor").unwrap().len(), base.table("Write").unwrap().len());
        assert_eq!(
            prime.table("EditorProceeding").unwrap().len(),
            base.table("Edit").unwrap().len()
        );
    }
}
