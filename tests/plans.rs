//! Integration tests of the planner/executor pipeline over the full
//! evaluation workloads: predicate pushdown must be a pure optimization
//! (identical answers with it on or off), and `run_plan` must agree with
//! the `execute` facade on every statement both engines generate.

use aqks_core::Engine;
use aqks_eval::{acmdl_queries, tpch_queries, EvalQuery};
use aqks_relational::Database;
use aqks_sqlgen::{
    execute, plan_with_options, run_plan, PlanNode, PlanOp, PlanOptions, SelectStatement,
};

fn tpch_prime() -> Database {
    aqks_datasets::denormalize_tpch(&aqks_datasets::generate_tpch(
        &aqks_datasets::TpchConfig::small(),
    ))
}

fn count_op(plan: &PlanNode, pred: impl Fn(&PlanOp) -> bool) -> usize {
    let mut n = 0;
    plan.visit(&mut |node| {
        if pred(&node.op) {
            n += 1;
        }
    });
    n
}

/// Every statement the engine generates for the workload, paired with
/// the database it runs on.
fn generated(db: Database, queries: &[EvalQuery], k: usize) -> (Database, Vec<SelectStatement>) {
    let engine = Engine::new(db.clone()).expect("engine builds");
    let mut stmts = Vec::new();
    for q in queries {
        // Some workload queries may legitimately have < k interpretations.
        if let Ok(gen) = engine.generate(q.text, k) {
            stmts.extend(gen.into_iter().map(|g| g.sql));
        }
    }
    assert!(stmts.len() >= queries.len(), "workload produced {} statements", stmts.len());
    (db, stmts)
}

/// Pushdown equivalence on unnormalized TPC-H′: for every generated
/// statement, planning with scan-time predicate evaluation and planning
/// with a post-join Filter return identical sorted answers — and at
/// least one statement actually exercises a pushed scan.
#[test]
fn pushdown_is_equivalent_on_tpch_prime_workload() {
    let (db, stmts) = generated(tpch_prime(), &tpch_queries(), 3);
    let mut pushed_scans = 0;
    for stmt in &stmts {
        let on = plan_with_options(stmt, &db, &PlanOptions { pushdown: true }).unwrap();
        let off = plan_with_options(stmt, &db, &PlanOptions { pushdown: false }).unwrap();
        pushed_scans +=
            count_op(&on, |op| matches!(op, PlanOp::Scan { pushed, .. } if !pushed.is_empty()));
        assert_eq!(
            count_op(&off, |op| matches!(op, PlanOp::Scan { pushed, .. } if !pushed.is_empty())),
            0,
            "pushdown=false must not push predicates into scans:\n{stmt}"
        );
        let (a, _) = run_plan(&on, &db).unwrap();
        let (b, _) = run_plan(&off, &db).unwrap();
        assert_eq!(a, b, "pushdown changed the answer of:\n{stmt}");
    }
    assert!(pushed_scans > 0, "no workload statement exercised a pushed scan");
}

/// The plan pipeline agrees with the `execute` facade on both normalized
/// workloads (TPC-H T1–T8 and ACMDL A1–A8, top-3 interpretations each).
#[test]
fn run_plan_matches_execute_on_normalized_workloads() {
    for (db, queries) in [
        (aqks_datasets::generate_tpch(&aqks_datasets::TpchConfig::small()), tpch_queries()),
        (aqks_datasets::generate_acmdl(&aqks_datasets::AcmdlConfig::small()), acmdl_queries()),
    ] {
        let (db, stmts) = generated(db, &queries, 3);
        for stmt in &stmts {
            let via_facade = execute(stmt, &db).unwrap();
            let plan = plan_with_options(stmt, &db, &PlanOptions::default()).unwrap();
            let (via_plan, stats) = run_plan(&plan, &db).unwrap();
            assert_eq!(via_facade, via_plan, "{stmt}");
            assert_eq!(stats.ops.len(), plan.max_id() + 1);
        }
    }
}

/// Cross products, when unavoidable, start from the smallest source: no
/// workload statement plans a CrossJoin whose left subtree is estimated
/// larger than another available source (regression for the old
/// `pick.unwrap_or(0)` fallback is in `sqlgen::plan::tests`; this checks
/// the invariant holds over real generated SQL too).
#[test]
fn workload_plans_prefer_hash_joins() {
    let (db, stmts) = generated(tpch_prime(), &tpch_queries(), 3);
    let mut hash = 0;
    let mut cross = 0;
    for stmt in &stmts {
        let plan = plan_with_options(stmt, &db, &PlanOptions::default()).unwrap();
        hash += count_op(&plan, |op| matches!(op, PlanOp::HashJoin { .. }));
        cross += count_op(&plan, |op| matches!(op, PlanOp::CrossJoin));
    }
    assert!(hash > 0, "workload contains equi-joins");
    assert_eq!(cross, 0, "connected join graphs must never fall back to cross products");
}
