//! Disabled-guard overhead: with no governor installed, checkpoints and
//! charges must not allocate — one thread-local read and out. A counting
//! global allocator wraps the system allocator; only allocations made by
//! the measuring thread are counted (the libtest harness thread can
//! allocate at any time and must not pollute the count). Mirrors
//! `crates/obs/tests/overhead.rs`.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};

use aqks_guard::{Budget, Governor};

struct CountingAlloc;

static ALLOCATIONS: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    // Const-initialized and destructor-free, so reading it inside the
    // allocator can neither allocate nor touch torn-down TLS.
    static TRACKING: Cell<bool> = const { Cell::new(false) };
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let _ = TRACKING.try_with(|t| {
            if t.get() {
                ALLOCATIONS.fetch_add(1, Ordering::SeqCst);
            }
        });
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

#[test]
fn ungoverned_charges_do_not_allocate() {
    // Warm the thread-local ambient stack and any lazy runtime state.
    {
        let gov = Governor::new(&Budget::unlimited());
        let g = aqks_guard::install(&gov);
        let _ = aqks_guard::charge_rows("warmup", 1);
        let _ = aqks_guard::checkpoint("warmup");
        drop(g);
        let _ = aqks_guard::current();
        let _ = aqks_guard::charge_rows("warmup", 1);
        // With the `failpoints` feature, the first probe lazily reads
        // `AQKS_FAILPOINTS` and initializes the thread-local registry.
        let _ = aqks_guard::failpoint::should_fire("warmup");
    }

    TRACKING.with(|t| t.set(true));
    let before = ALLOCATIONS.load(Ordering::SeqCst);
    for _ in 0..10_000 {
        // The hot-loop surface: a batch checkpoint plus per-dimension
        // charges, all with no governor installed.
        let _ = aqks_guard::checkpoint("ops.batch");
        let _ = aqks_guard::charge_rows("ops.batch", 1024);
        let _ = aqks_guard::charge_patterns("pattern.enumerate", 1);
        let _ = aqks_guard::charge_interpretations("engine.answer", 1);
        assert!(!aqks_guard::failpoint::should_fire("ops.batch"));
    }
    let after = ALLOCATIONS.load(Ordering::SeqCst);
    assert_eq!(after - before, 0, "disabled guard allocated {} time(s)", after - before);

    // Sanity check that the counter itself works.
    let probe = vec![1u8, 2, 3];
    assert!(ALLOCATIONS.load(Ordering::SeqCst) > after, "allocator instrumented");
    drop(probe);
    TRACKING.with(|t| t.set(false));

    // An installed governor with limits still enforces normally: the
    // zero-cost path above did not disable anything.
    let gov = Governor::new(&Budget::unlimited().with_max_rows(10));
    let _g = aqks_guard::install(&gov);
    assert!(aqks_guard::charge_rows("live", 11).is_err());
}
