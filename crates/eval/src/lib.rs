#![cfg_attr(not(test), warn(clippy::unwrap_used))]
#![warn(missing_docs)]
//! # aqks-eval
//!
//! The evaluation harness reproducing Section 6 of the paper:
//!
//! * [`workload`] — the sixteen queries of Tables 3 and 4 (T1–T8 on
//!   TPC-H, A1–A8 on ACMDL) with their search intentions;
//! * [`tables`] — runs both engines and renders the answer-comparison
//!   rows of Tables 5, 6 (normalized) and 8, 9 (unnormalized);
//! * [`fig11`] — times SQL *generation* (not execution) for both engines,
//!   reproducing Figure 11's two series;
//! * [`execbench`] — times plan *execution* through the physical-operator
//!   pipeline, per query and per operator, writing `BENCH_exec.json`;
//! * [`equivbench`] — measures the duplicate work `aqks-equiv` removes
//!   from the workloads (equivalence classes, shared subtrees, and the
//!   executed-rows reduction of deduplicated shared execution), writing
//!   `BENCH_equiv.json`;
//! * [`obsbench`] — measures the end-to-end cost of the always-on
//!   metrics subsystem with interleaved enabled/disabled repetitions
//!   and pins the disabled recording path's zero-allocation contract,
//!   writing `BENCH_obs.json`;
//! * [`servebench`] — drives the `aqks-server` query service with a
//!   closed-loop Zipf-mixed load (and, on failpoints builds, a chaos
//!   sweep over the server's fault-injection sites), writing
//!   throughput, p50/p99 latency, and shed rate to `BENCH_serve.json`;
//! * [`analysis`] — runs the `aqks-analyze` static analyzer over every
//!   statement both engines generate for the workloads: the paper engine
//!   must come back with zero error findings, SQAK trips `AQ-P5` where
//!   Section 4 predicts duplicate-inflated answers;
//! * [`plans`] — runs the `aqks-plancheck` physical-plan verifier over
//!   every plan the engine produces for the workloads (100% must verify
//!   clean) and checks the plan-fingerprint determinism/injectivity
//!   contract that plan caching will rely on.
//!
//! The `repro` binary drives everything:
//!
//! ```text
//! repro table5 | table6 | table8 | table9 | fig11 | all [--paper-scale]
//! repro exec-bench [--smoke] [--out FILE] [--reps N]
//! ```
//!
//! `--paper-scale` switches from the fast test-sized datasets to
//! generators with the paper's cardinalities (1000 suppliers, 61 Smiths,
//! 36 SIGMOD proceedings, …).

pub mod analysis;
pub mod equivbench;
pub mod execbench;
#[cfg(feature = "failpoints")]
pub mod faults;
pub mod fig11;
pub mod obsbench;
pub mod plans;
pub mod servebench;
pub mod tables;
#[cfg(test)]
mod tests;
pub mod timing;
pub mod workload;

pub use analysis::{analyze_workload, run_analysis, AnalysisRow, PlanVerdict};
pub use equivbench::{run_equiv_bench, WorkloadEquivBench};
pub use execbench::{
    run_exec_bench, run_thread_sweep, OpBenchRow, QueryExecBench, SweepPoint, ThreadSweep,
    ThreadSweepRow,
};
#[cfg(feature = "failpoints")]
pub use faults::{run_fault_sweep, FaultOutcome};
pub use fig11::{run_fig11, TimingRow};
pub use obsbench::{run_obs_bench, ObsBench, QueryObsBench};
pub use plans::{run_plan_sweep, verify_workload_plans, PlanCheckRow, PlanSweep};
pub use servebench::{run_serve_bench, ChaosSummary, LoadConfig, ServeBench};
pub use tables::{run_table5, run_table6, run_table8, run_table9, ComparisonRow, EngineOutcome};
pub use timing::TimingSummary;
pub use workload::{acmdl_queries, tpch_queries, EvalQuery, Scale};
