//! Always-on cumulative metrics: named counters, gauges, and
//! log-linear-bucket histograms behind a lock-free recording path.
//!
//! The span [`crate::Recorder`] answers "what did *this* call do";
//! this module answers "what has the engine done *so far*" — latency
//! and row-count distributions, per-site trip counts, per-operator
//! byte accounting — without a bench harness rerun.
//!
//! Design constraints, matching the recorder's:
//!
//! 1. **Recording is a few atomic ops.** Every metric handle caches a
//!    reference to its registered cell; a counter bump is one enabled
//!    check plus one `fetch_add`, a histogram observation is five
//!    relaxed atomic RMWs (count, sum, min, max, bucket). No lock is
//!    on the hot path — the registry [`Mutex`] is taken only when a
//!    metric (or a new label of a labeled metric) is seen for the
//!    first time.
//! 2. **Disabled means free.** With the registry disabled the hot path
//!    is a relaxed load and an early return: zero allocations, pinned
//!    by the `metrics_overhead` integration test with a counting
//!    allocator (the same harness that pins the recorder).
//! 3. **Fixed bucket layout.** Every histogram shares one log-linear
//!    layout ([`BUCKETS`] buckets, 4 sub-buckets per power of two), so
//!    merging two histograms is [`BUCKETS`] atomic adds — no
//!    allocation, no bucket-boundary negotiation.
//!
//! The process-wide registry lives behind [`global`] and starts
//! **enabled** — the pipeline is instrumented unconditionally and the
//! overhead budget (<3% median on the TPC-H′ workload, measured by
//! `repro obs-bench`) is part of the contract.

use std::sync::atomic::{AtomicBool, AtomicI64, AtomicPtr, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Number of histogram buckets. The layout is log-linear: values 0–3
/// get their own bucket, then every power of two is split into 4
/// sub-buckets, up to `u64::MAX` (index 251).
pub const BUCKETS: usize = 252;

/// Bucket index of a recorded value (total order, exhaustive over
/// `u64`). Values below 4 map to themselves; above, the index is
/// determined by the position of the most significant bit and the two
/// bits below it.
pub fn bucket_index(v: u64) -> usize {
    if v < 4 {
        return v as usize;
    }
    let msb = 63 - v.leading_zeros() as u64;
    let shift = msb - 2;
    ((shift + 1) * 4 + ((v >> shift) & 3)) as usize
}

/// Inclusive lower bound of bucket `i`.
pub fn bucket_lower(i: usize) -> u64 {
    if i < 4 {
        return i as u64;
    }
    let shift = i / 4 - 1;
    ((4 + (i % 4)) as u64) << shift
}

/// Inclusive upper bound of bucket `i`.
pub fn bucket_upper(i: usize) -> u64 {
    if i + 1 >= BUCKETS {
        return u64::MAX;
    }
    bucket_lower(i + 1) - 1
}

/// What a metric's `u64` values mean — drives exposition naming and
/// scaling (`*_ns` histograms are exported in seconds).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Unit {
    /// Dimensionless counts (rows, queries, trips).
    Count,
    /// Wall-clock nanoseconds.
    Nanos,
    /// Bytes.
    Bytes,
}

/// A monotonically increasing counter cell.
#[derive(Debug, Default)]
pub struct CounterCell {
    value: AtomicU64,
}

impl CounterCell {
    /// Adds `n` to the counter.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    fn merge_from(&self, other: &CounterCell) {
        self.value.fetch_add(other.get(), Ordering::Relaxed);
    }

    fn reset(&self) {
        self.value.store(0, Ordering::Relaxed);
    }
}

/// A gauge cell: a settable signed value (ring occupancy, pool sizes).
#[derive(Debug, Default)]
pub struct GaugeCell {
    value: AtomicI64,
}

impl GaugeCell {
    /// Sets the gauge.
    pub fn set(&self, v: i64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Adds `d` (may be negative).
    pub fn add(&self, d: i64) {
        self.value.fetch_add(d, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }

    fn reset(&self) {
        self.value.store(0, Ordering::Relaxed);
    }
}

/// A histogram cell with the fixed log-linear bucket layout plus
/// count/sum/min/max. All operations are relaxed atomics; snapshots
/// taken under concurrent recording are approximate (fields may be a
/// few observations apart), which is fine for telemetry.
pub struct HistogramCell {
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
    buckets: [AtomicU64; BUCKETS],
}

impl HistogramCell {
    fn new() -> HistogramCell {
        HistogramCell {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    /// Records one observation: five relaxed atomic RMWs.
    pub fn record(&self, v: u64) {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.min.fetch_min(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
    }

    /// Merges `other` into `self` without allocating — possible because
    /// every histogram shares the same fixed bucket layout.
    pub fn merge_from(&self, other: &HistogramCell) {
        if other.count.load(Ordering::Relaxed) == 0 {
            return;
        }
        self.count.fetch_add(other.count.load(Ordering::Relaxed), Ordering::Relaxed);
        self.sum.fetch_add(other.sum.load(Ordering::Relaxed), Ordering::Relaxed);
        self.min.fetch_min(other.min.load(Ordering::Relaxed), Ordering::Relaxed);
        self.max.fetch_max(other.max.load(Ordering::Relaxed), Ordering::Relaxed);
        for (mine, theirs) in self.buckets.iter().zip(other.buckets.iter()) {
            let n = theirs.load(Ordering::Relaxed);
            if n > 0 {
                mine.fetch_add(n, Ordering::Relaxed);
            }
        }
    }

    /// Immutable snapshot (sparse: only non-empty buckets).
    pub fn snapshot(&self) -> HistogramSnapshot {
        let count = self.count.load(Ordering::Relaxed);
        let mut buckets = Vec::new();
        for (i, b) in self.buckets.iter().enumerate() {
            let n = b.load(Ordering::Relaxed);
            if n > 0 {
                buckets.push((i, n));
            }
        }
        HistogramSnapshot {
            count,
            sum: self.sum.load(Ordering::Relaxed),
            min: if count == 0 { 0 } else { self.min.load(Ordering::Relaxed) },
            max: self.max.load(Ordering::Relaxed),
            buckets,
        }
    }

    fn reset(&self) {
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
        self.min.store(u64::MAX, Ordering::Relaxed);
        self.max.store(0, Ordering::Relaxed);
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
    }
}

impl std::fmt::Debug for HistogramCell {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = self.snapshot();
        write!(f, "HistogramCell(count={}, sum={}, min={}, max={})", s.count, s.sum, s.min, s.max)
    }
}

/// Point-in-time view of one histogram.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Number of observations.
    pub count: u64,
    /// Sum of all observed values.
    pub sum: u64,
    /// Smallest observed value (0 when empty).
    pub min: u64,
    /// Largest observed value (0 when empty).
    pub max: u64,
    /// Non-empty buckets as `(bucket index, count)`, ascending index.
    pub buckets: Vec<(usize, u64)>,
}

impl HistogramSnapshot {
    /// Nearest-rank quantile estimate, clamped to the observed
    /// `[min, max]` range. The estimate lands in the same bucket as the
    /// true quantile, so the error is below one bucket width (a quarter
    /// of the value, by the log-linear layout). Returns 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for &(i, n) in &self.buckets {
            seen += n;
            if seen >= rank {
                return bucket_upper(i).min(self.max).max(self.min);
            }
        }
        self.max
    }

    /// Arithmetic mean of the observations (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

#[derive(Debug, Clone)]
enum Cell {
    Counter(Arc<CounterCell>),
    Gauge(Arc<GaugeCell>),
    Histogram(Arc<HistogramCell>, Unit),
}

#[derive(Debug, Clone)]
struct Entry {
    name: &'static str,
    label: Option<(&'static str, &'static str)>,
    cell: Cell,
}

/// A named registry of counters, gauges, and histograms.
///
/// Registration (first use of a name, or of a new label value) takes a
/// mutex; recording through the returned [`Arc`] cells never does.
/// Independent registries can be built for tests or scoped collection
/// and merged with [`Registry::merge_from`].
#[derive(Debug)]
pub struct Registry {
    enabled: AtomicBool,
    inner: Mutex<Vec<Entry>>,
}

impl Default for Registry {
    fn default() -> Self {
        Registry::new()
    }
}

/// Recovers the entry list from a poisoned lock — cells are atomic, so
/// the list is structurally sound even if a panic interrupted a
/// registration.
fn relock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|p| p.into_inner())
}

impl Registry {
    /// Builds an empty, **enabled** registry.
    pub fn new() -> Registry {
        Registry { enabled: AtomicBool::new(true), inner: Mutex::new(Vec::new()) }
    }

    /// Whether recording is on (one relaxed load).
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Turns recording on or off. Handles check this before touching
    /// their cells; existing cell values are kept.
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    fn register(
        &self,
        name: &'static str,
        label: Option<(&'static str, &'static str)>,
        make: impl FnOnce() -> Cell,
    ) -> Cell {
        let mut inner = relock(&self.inner);
        if let Some(e) = inner.iter().find(|e| e.name == name && e.label == label) {
            return e.cell.clone();
        }
        let cell = make();
        inner.push(Entry { name, label, cell: cell.clone() });
        cell
    }

    /// Registers (or finds) the counter `name`.
    pub fn counter(&self, name: &'static str) -> Arc<CounterCell> {
        match self.register(name, None, || Cell::Counter(Arc::new(CounterCell::default()))) {
            Cell::Counter(c) => c,
            other => panic!("metric `{name}` already registered as {other:?}"),
        }
    }

    /// Registers (or finds) the counter `name{key="label"}`.
    pub fn labeled_counter(
        &self,
        name: &'static str,
        key: &'static str,
        label: &'static str,
    ) -> Arc<CounterCell> {
        match self
            .register(name, Some((key, label)), || Cell::Counter(Arc::new(CounterCell::default())))
        {
            Cell::Counter(c) => c,
            other => panic!("metric `{name}` already registered as {other:?}"),
        }
    }

    /// Registers (or finds) the gauge `name`.
    pub fn gauge(&self, name: &'static str) -> Arc<GaugeCell> {
        match self.register(name, None, || Cell::Gauge(Arc::new(GaugeCell::default()))) {
            Cell::Gauge(c) => c,
            other => panic!("metric `{name}` already registered as {other:?}"),
        }
    }

    /// Registers (or finds) the histogram `name` with value unit `unit`.
    pub fn histogram(&self, name: &'static str, unit: Unit) -> Arc<HistogramCell> {
        match self.register(name, None, || Cell::Histogram(Arc::new(HistogramCell::new()), unit)) {
            Cell::Histogram(c, _) => c,
            other => panic!("metric `{name}` already registered as {other:?}"),
        }
    }

    /// Registers (or finds) the histogram `name{key="label"}`.
    pub fn labeled_histogram(
        &self,
        name: &'static str,
        key: &'static str,
        label: &'static str,
        unit: Unit,
    ) -> Arc<HistogramCell> {
        match self.register(name, Some((key, label)), || {
            Cell::Histogram(Arc::new(HistogramCell::new()), unit)
        }) {
            Cell::Histogram(c, _) => c,
            other => panic!("metric `{name}` already registered as {other:?}"),
        }
    }

    /// Snapshots every metric, sorted by name then label value — the
    /// stable order the Prometheus exposition relies on.
    pub fn snapshot(&self) -> Snapshot {
        let entries: Vec<Entry> = relock(&self.inner).clone();
        let mut metrics: Vec<Metric> = entries
            .into_iter()
            .map(|e| {
                let (unit, value) = match &e.cell {
                    Cell::Counter(c) => (Unit::Count, MetricValue::Counter(c.get())),
                    Cell::Gauge(g) => (Unit::Count, MetricValue::Gauge(g.get())),
                    Cell::Histogram(h, u) => (*u, MetricValue::Histogram(h.snapshot())),
                };
                Metric { name: e.name, label: e.label, unit, value }
            })
            .collect();
        metrics.sort_by(|a, b| (a.name, a.label.map(|l| l.1)).cmp(&(b.name, b.label.map(|l| l.1))));
        Snapshot { metrics }
    }

    /// Merges every metric of `other` into `self`: counters and gauges
    /// add, histograms merge bucket-wise (allocation-free per cell;
    /// metrics `self` has never seen are registered first). Disjoint
    /// registries therefore merge into their union.
    pub fn merge_from(&self, other: &Registry) {
        let entries: Vec<Entry> = relock(&other.inner).clone();
        for e in entries {
            match e.cell {
                Cell::Counter(theirs) => {
                    let mine = match e.label {
                        Some((k, v)) => self.labeled_counter(e.name, k, v),
                        None => self.counter(e.name),
                    };
                    mine.merge_from(&theirs);
                }
                Cell::Gauge(theirs) => self.gauge(e.name).add(theirs.get()),
                Cell::Histogram(theirs, unit) => {
                    let mine = match e.label {
                        Some((k, v)) => self.labeled_histogram(e.name, k, v, unit),
                        None => self.histogram(e.name, unit),
                    };
                    mine.merge_from(&theirs);
                }
            }
        }
    }

    /// Zeroes every registered cell (names and labels stay registered).
    pub fn reset(&self) {
        for e in relock(&self.inner).iter() {
            match &e.cell {
                Cell::Counter(c) => c.reset(),
                Cell::Gauge(g) => g.reset(),
                Cell::Histogram(h, _) => h.reset(),
            }
        }
    }
}

/// Point-in-time view of a whole registry, sorted by name then label.
#[derive(Debug, Clone)]
pub struct Snapshot {
    /// The metrics, in exposition order.
    pub metrics: Vec<Metric>,
}

impl Snapshot {
    /// Finds a metric by name and (optional) label value.
    pub fn find(&self, name: &str, label: Option<&str>) -> Option<&Metric> {
        self.metrics.iter().find(|m| m.name == name && m.label.map(|l| l.1) == label)
    }

    /// Sum over all labels of the counter `name` (0 if absent).
    pub fn counter_total(&self, name: &str) -> u64 {
        self.metrics
            .iter()
            .filter(|m| m.name == name)
            .map(|m| match &m.value {
                MetricValue::Counter(v) => *v,
                _ => 0,
            })
            .sum()
    }
}

/// One metric in a [`Snapshot`].
#[derive(Debug, Clone)]
pub struct Metric {
    /// Registered name.
    pub name: &'static str,
    /// Optional `(key, value)` label.
    pub label: Option<(&'static str, &'static str)>,
    /// Value unit (always [`Unit::Count`] for counters and gauges).
    pub unit: Unit,
    /// The value.
    pub value: MetricValue,
}

/// A snapshotted metric value.
#[derive(Debug, Clone)]
pub enum MetricValue {
    /// Counter value.
    Counter(u64),
    /// Gauge value.
    Gauge(i64),
    /// Histogram state.
    Histogram(HistogramSnapshot),
}

static GLOBAL: OnceLock<Registry> = OnceLock::new();

/// The process-wide registry every static metric handle records into.
/// Starts enabled.
pub fn global() -> &'static Registry {
    GLOBAL.get_or_init(Registry::new)
}

/// Whether the global registry is recording.
pub fn enabled() -> bool {
    global().is_enabled()
}

/// Enables or disables the global registry.
pub fn set_enabled(on: bool) {
    global().set_enabled(on)
}

/// A `static`-friendly counter handle bound to the global registry.
/// The cell reference is resolved (and the name registered) on first
/// enabled use; after that, [`Counter::add`] is two atomic loads and a
/// `fetch_add`.
pub struct Counter {
    name: &'static str,
    cell: OnceLock<Arc<CounterCell>>,
}

impl Counter {
    /// Declares a counter handle (usable in `static` position).
    pub const fn new(name: &'static str) -> Counter {
        Counter { name, cell: OnceLock::new() }
    }

    /// Adds `n` when the global registry is enabled.
    pub fn add(&self, n: u64) {
        if !enabled() {
            return;
        }
        self.cell.get_or_init(|| global().counter(self.name)).add(n);
    }

    /// Current value (registers the name if never recorded).
    pub fn get(&self) -> u64 {
        self.cell.get_or_init(|| global().counter(self.name)).get()
    }
}

/// A `static`-friendly gauge handle bound to the global registry.
pub struct Gauge {
    name: &'static str,
    cell: OnceLock<Arc<GaugeCell>>,
}

impl Gauge {
    /// Declares a gauge handle (usable in `static` position).
    pub const fn new(name: &'static str) -> Gauge {
        Gauge { name, cell: OnceLock::new() }
    }

    /// Sets the gauge when the global registry is enabled.
    pub fn set(&self, v: i64) {
        if !enabled() {
            return;
        }
        self.cell.get_or_init(|| global().gauge(self.name)).set(v);
    }

    /// Adds `d` when the global registry is enabled.
    pub fn add(&self, d: i64) {
        if !enabled() {
            return;
        }
        self.cell.get_or_init(|| global().gauge(self.name)).add(d);
    }

    /// Current value (registers the name if never recorded).
    pub fn get(&self) -> i64 {
        self.cell.get_or_init(|| global().gauge(self.name)).get()
    }
}

/// A `static`-friendly histogram handle bound to the global registry.
pub struct Histogram {
    name: &'static str,
    unit: Unit,
    cell: OnceLock<Arc<HistogramCell>>,
}

impl Histogram {
    /// Declares a histogram handle (usable in `static` position).
    pub const fn new(name: &'static str, unit: Unit) -> Histogram {
        Histogram { name, unit, cell: OnceLock::new() }
    }

    /// Records `v` when the global registry is enabled.
    pub fn observe(&self, v: u64) {
        if !enabled() {
            return;
        }
        self.cell.get_or_init(|| global().histogram(self.name, self.unit)).record(v);
    }
}

/// One published node of a labeled handle's lock-free label chain.
/// Nodes are pushed once and never unlinked before the handle drops,
/// so a `&Node` obtained while the handle is alive stays valid.
struct Node<C> {
    label: &'static str,
    cell: Arc<C>,
    next: *mut Node<C>,
}

/// A lock-free, append-only `label -> cell` map: an atomic singly
/// linked list of heap nodes. Reads walk the chain without locking;
/// inserts CAS-push a new head. Two threads racing to insert the same
/// label may push two nodes, but the registry hands both the same
/// cell, so recording stays correct.
struct Chain<C> {
    head: AtomicPtr<Node<C>>,
}

// SAFETY: nodes are immutable after publication and only freed by
// `Drop` (which has `&mut self`); the cells inside are `Send + Sync`.
unsafe impl<C: Send + Sync> Send for Chain<C> {}
unsafe impl<C: Send + Sync> Sync for Chain<C> {}

impl<C> Chain<C> {
    const fn new() -> Chain<C> {
        Chain { head: AtomicPtr::new(std::ptr::null_mut()) }
    }

    fn find(&self, label: &str) -> Option<&C> {
        let mut p = self.head.load(Ordering::Acquire);
        while !p.is_null() {
            // SAFETY: `p` came from `Box::into_raw` in `push` and is
            // not freed while `&self` is borrowed.
            let node = unsafe { &*p };
            if node.label == label {
                return Some(&node.cell);
            }
            p = node.next;
        }
        None
    }

    fn push(&self, label: &'static str, cell: Arc<C>) -> &C {
        let node = Box::into_raw(Box::new(Node { label, cell, next: std::ptr::null_mut() }));
        loop {
            let head = self.head.load(Ordering::Acquire);
            // SAFETY: `node` is unpublished — this thread owns it.
            unsafe { (*node).next = head };
            if self.head.compare_exchange(head, node, Ordering::Release, Ordering::Acquire).is_ok()
            {
                // SAFETY: now published; nodes live until `Drop`.
                return unsafe { &(*node).cell };
            }
        }
    }
}

impl<C> Drop for Chain<C> {
    fn drop(&mut self) {
        let mut p = *self.head.get_mut();
        while !p.is_null() {
            // SAFETY: exclusive access; each node was a `Box`.
            let node = unsafe { Box::from_raw(p) };
            p = node.next;
        }
    }
}

/// A `static`-friendly counter family keyed by one `&'static str`
/// label (operator names, guard sites, pipeline phases). Lookup of a
/// known label is a lock-free list walk over the handful of labels the
/// family has seen.
pub struct LabeledCounter {
    name: &'static str,
    key: &'static str,
    chain: Chain<CounterCell>,
}

impl LabeledCounter {
    /// Declares a labeled counter handle (usable in `static` position).
    pub const fn new(name: &'static str, key: &'static str) -> LabeledCounter {
        LabeledCounter { name, key, chain: Chain::new() }
    }

    /// Adds `n` to the `label` series when the global registry is
    /// enabled.
    pub fn add(&self, label: &'static str, n: u64) {
        if !enabled() {
            return;
        }
        match self.chain.find(label) {
            Some(cell) => cell.add(n),
            None => {
                self.chain.push(label, global().labeled_counter(self.name, self.key, label)).add(n)
            }
        }
    }
}

/// A `static`-friendly histogram family keyed by one `&'static str`
/// label. Same chain mechanics as [`LabeledCounter`].
pub struct LabeledHistogram {
    name: &'static str,
    key: &'static str,
    unit: Unit,
    chain: Chain<HistogramCell>,
}

impl LabeledHistogram {
    /// Declares a labeled histogram handle (usable in `static` position).
    pub const fn new(name: &'static str, key: &'static str, unit: Unit) -> LabeledHistogram {
        LabeledHistogram { name, key, unit, chain: Chain::new() }
    }

    /// Records `v` in the `label` series when the global registry is
    /// enabled.
    pub fn observe(&self, label: &'static str, v: u64) {
        if !enabled() {
            return;
        }
        match self.chain.find(label) {
            Some(cell) => cell.record(v),
            None => self
                .chain
                .push(label, global().labeled_histogram(self.name, self.key, label, self.unit))
                .record(v),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_layout_is_total_and_monotone() {
        // Every bucket's bounds tile u64 without gaps or overlaps.
        assert_eq!(bucket_lower(0), 0);
        for i in 0..BUCKETS - 1 {
            assert_eq!(bucket_upper(i) + 1, bucket_lower(i + 1), "gap after bucket {i}");
        }
        assert_eq!(bucket_upper(BUCKETS - 1), u64::MAX);
        // Round-trip: every bound indexes back to its own bucket.
        for i in 0..BUCKETS {
            assert_eq!(bucket_index(bucket_lower(i)), i);
            assert_eq!(bucket_index(bucket_upper(i)), i);
        }
    }

    #[test]
    fn bucket_width_is_below_a_quarter_of_the_value() {
        for i in 8..BUCKETS {
            let lo = bucket_lower(i);
            let width = bucket_upper(i) - lo + 1;
            assert!(width * 4 <= lo, "bucket {i}: width {width} vs lower {lo}");
        }
    }

    #[test]
    fn histogram_with_zero_observations() {
        let h = HistogramCell::new();
        let s = h.snapshot();
        assert_eq!(s.count, 0);
        assert_eq!(s.sum, 0);
        assert_eq!(s.min, 0);
        assert_eq!(s.max, 0);
        assert!(s.buckets.is_empty());
        assert_eq!(s.quantile(0.5), 0);
        assert_eq!(s.mean(), 0.0);
    }

    #[test]
    fn histogram_with_a_single_observation() {
        let h = HistogramCell::new();
        h.record(1234);
        let s = h.snapshot();
        assert_eq!(s.count, 1);
        assert_eq!(s.sum, 1234);
        assert_eq!(s.min, 1234);
        assert_eq!(s.max, 1234);
        assert_eq!(s.buckets.len(), 1);
        // With one observation every quantile is that observation —
        // the min/max clamp makes the estimate exact.
        for q in [0.0, 0.5, 0.95, 1.0] {
            assert_eq!(s.quantile(q), 1234);
        }
    }

    #[test]
    fn histogram_accepts_u64_max() {
        let h = HistogramCell::new();
        h.record(u64::MAX);
        h.record(0);
        let s = h.snapshot();
        assert_eq!(s.count, 2);
        assert_eq!(s.min, 0);
        assert_eq!(s.max, u64::MAX);
        assert_eq!(s.quantile(1.0), u64::MAX);
        assert_eq!(bucket_index(u64::MAX), BUCKETS - 1);
    }

    #[test]
    fn merge_of_disjoint_registries_is_their_union() {
        let a = Registry::new();
        let b = Registry::new();
        a.counter("only_in_a").add(3);
        a.histogram("shared_hist", Unit::Nanos).record(10);
        b.counter("only_in_b").add(7);
        b.histogram("shared_hist", Unit::Nanos).record(30);
        b.labeled_counter("labeled", "site", "x").add(2);
        a.merge_from(&b);
        let s = a.snapshot();
        assert_eq!(s.counter_total("only_in_a"), 3);
        assert_eq!(s.counter_total("only_in_b"), 7);
        assert_eq!(s.counter_total("labeled"), 2);
        match &s.find("shared_hist", None).expect("merged histogram").value {
            MetricValue::Histogram(h) => {
                assert_eq!(h.count, 2);
                assert_eq!(h.sum, 40);
                assert_eq!(h.min, 10);
                assert_eq!(h.max, 30);
            }
            other => panic!("expected histogram, got {other:?}"),
        }
    }

    #[test]
    fn quantile_error_is_below_one_bucket_width_on_10k_samples() {
        // Fixed-seed LCG sample spanning ~6 decades.
        let mut x = 0x2545f4914f6cdd1du64;
        let mut sample: Vec<u64> = Vec::with_capacity(10_000);
        let h = HistogramCell::new();
        for _ in 0..10_000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let v = (x >> 33) % 1_000_000_007;
            sample.push(v);
            h.record(v);
        }
        sample.sort_unstable();
        let s = h.snapshot();
        assert_eq!(s.count, 10_000);
        for q in [0.01, 0.25, 0.5, 0.9, 0.95, 0.99] {
            let rank = ((q * sample.len() as f64).ceil() as usize).clamp(1, sample.len());
            let truth = sample[rank - 1];
            let est = s.quantile(q);
            let i = bucket_index(truth);
            let width = bucket_upper(i) - bucket_lower(i) + 1;
            let err = est.abs_diff(truth);
            assert!(err < width, "q={q}: est {est} vs true {truth}, err {err} >= width {width}");
        }
    }

    #[test]
    fn counters_gauges_and_reset() {
        let r = Registry::new();
        let c = r.counter("c");
        c.add(5);
        c.add(2);
        assert_eq!(c.get(), 7);
        let g = r.gauge("g");
        g.set(10);
        g.add(-3);
        assert_eq!(g.get(), 7);
        r.reset();
        assert_eq!(c.get(), 0);
        assert_eq!(g.get(), 0);
    }

    #[test]
    fn disabled_registry_keeps_values_and_reenables() {
        // The enabled flag gates the *handles*; direct cell access (as
        // used here) always records — callers check `is_enabled`.
        let r = Registry::new();
        assert!(r.is_enabled());
        r.set_enabled(false);
        assert!(!r.is_enabled());
        r.set_enabled(true);
        assert!(r.is_enabled());
    }

    #[test]
    fn snapshot_orders_by_name_then_label() {
        let r = Registry::new();
        r.labeled_counter("b_metric", "op", "zeta").add(1);
        r.counter("a_metric").add(1);
        r.labeled_counter("b_metric", "op", "alpha").add(1);
        let names: Vec<(&str, Option<&str>)> =
            r.snapshot().metrics.iter().map(|m| (m.name, m.label.map(|l| l.1))).collect();
        assert_eq!(
            names,
            vec![("a_metric", None), ("b_metric", Some("alpha")), ("b_metric", Some("zeta"))]
        );
    }

    #[test]
    fn labeled_handles_share_cells_with_the_global_registry() {
        static C: LabeledCounter = LabeledCounter::new("aqks_test_chain_counter", "site");
        static H: LabeledHistogram =
            LabeledHistogram::new("aqks_test_chain_hist", "site", Unit::Bytes);
        let was = enabled();
        set_enabled(true);
        C.add("s1", 2);
        C.add("s2", 3);
        C.add("s1", 5);
        H.observe("s1", 100);
        let snap = global().snapshot();
        assert_eq!(
            snap.find("aqks_test_chain_counter", Some("s1")).map(|m| match m.value {
                MetricValue::Counter(v) => v,
                _ => 0,
            }),
            Some(7)
        );
        assert_eq!(snap.counter_total("aqks_test_chain_counter"), 10);
        match &snap.find("aqks_test_chain_hist", Some("s1")).expect("registered").value {
            MetricValue::Histogram(h) => assert_eq!(h.count, 1),
            other => panic!("expected histogram, got {other:?}"),
        }
        set_enabled(was);
    }

    #[test]
    fn chain_is_race_free_under_concurrent_inserts() {
        let counter = LabeledCounter::new("race", "t");
        let labels: [&'static str; 4] = ["a", "b", "c", "d"];
        set_enabled(true);
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    for _ in 0..1000 {
                        for l in labels {
                            counter.add(l, 1);
                        }
                    }
                });
            }
        });
        let snap = global().snapshot();
        for l in labels {
            assert_eq!(
                snap.find("race", Some(l)).map(|m| match m.value {
                    MetricValue::Counter(v) => v,
                    _ => 0,
                }),
                Some(8000),
                "label {l}"
            );
        }
    }
}
