//! Relation and database schemas: attributes, primary keys, foreign keys,
//! and declared functional dependencies.
//!
//! Names are stored in their canonical (declared) casing but all lookups
//! are case-insensitive, matching how keyword queries refer to metadata
//! ("order" matches relation `Order`, "acctbal" matches `Supplier.acctbal`).

use crate::error::{Error, Result};
use crate::fd::{Fd, FdSet};

/// Declared type of an attribute.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AttrType {
    /// 64-bit integer.
    Int,
    /// 64-bit float.
    Float,
    /// UTF-8 text.
    Text,
    /// Calendar date.
    Date,
}

impl AttrType {
    /// Lowercase name used in error messages and schema dumps.
    pub fn name(self) -> &'static str {
        match self {
            AttrType::Int => "int",
            AttrType::Float => "float",
            AttrType::Text => "text",
            AttrType::Date => "date",
        }
    }
}

/// A named, typed attribute of a relation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Attribute {
    /// Canonical attribute name as declared.
    pub name: String,
    /// Declared type.
    pub ty: AttrType,
}

/// A foreign key: `attrs` in this relation reference `ref_attrs` (usually
/// the primary key) of `ref_relation`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ForeignKey {
    /// Referencing attributes in the owning relation.
    pub attrs: Vec<String>,
    /// Referenced relation name.
    pub ref_relation: String,
    /// Referenced attributes (parallel to `attrs`).
    pub ref_attrs: Vec<String>,
}

/// Schema of a single relation.
#[derive(Debug, Clone, PartialEq)]
pub struct RelationSchema {
    /// Canonical relation name.
    pub name: String,
    /// Attributes in declaration order.
    pub attrs: Vec<Attribute>,
    /// Primary-key attribute names (canonical casing).
    pub primary_key: Vec<String>,
    /// Declared foreign keys.
    pub foreign_keys: Vec<ForeignKey>,
    /// Extra functional dependencies beyond `PK -> all attributes`.
    /// Normalized relations leave this empty; unnormalized relations
    /// (Section 4) declare the FDs that expose their redundancy.
    pub extra_fds: Vec<Fd>,
    /// Semantic names for the entities hidden inside an unnormalized
    /// relation, keyed by their identifying attribute set. Used by 3NF
    /// synthesis to name decomposed relations the way the paper does
    /// (`Student'`, `Enrol'`, …) so that keyword metadata matching works
    /// against the normalized view.
    pub entity_names: Vec<(Vec<String>, String)>,
}

impl RelationSchema {
    /// Creates an empty schema with the given canonical name.
    pub fn new(name: impl Into<String>) -> Self {
        RelationSchema {
            name: name.into(),
            attrs: Vec::new(),
            primary_key: Vec::new(),
            foreign_keys: Vec::new(),
            extra_fds: Vec::new(),
            entity_names: Vec::new(),
        }
    }

    /// Appends an attribute. Returns `self` for builder-style chaining.
    pub fn add_attr(&mut self, name: impl Into<String>, ty: AttrType) -> &mut Self {
        self.attrs.push(Attribute { name: name.into(), ty });
        self
    }

    /// Declares the primary key. Attribute names are resolved to canonical
    /// casing when the schema is added to a database.
    pub fn set_primary_key<I, S>(&mut self, attrs: I) -> &mut Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.primary_key = attrs.into_iter().map(Into::into).collect();
        self
    }

    /// Declares a foreign key `attrs -> ref_relation(ref_attrs)`.
    pub fn add_foreign_key<I, J, S, T>(
        &mut self,
        attrs: I,
        ref_relation: impl Into<String>,
        ref_attrs: J,
    ) -> &mut Self
    where
        I: IntoIterator<Item = S>,
        J: IntoIterator<Item = T>,
        S: Into<String>,
        T: Into<String>,
    {
        self.foreign_keys.push(ForeignKey {
            attrs: attrs.into_iter().map(Into::into).collect(),
            ref_relation: ref_relation.into(),
            ref_attrs: ref_attrs.into_iter().map(Into::into).collect(),
        });
        self
    }

    /// Declares an extra functional dependency (for unnormalized relations).
    pub fn add_fd<I, J, S, T>(&mut self, lhs: I, rhs: J) -> &mut Self
    where
        I: IntoIterator<Item = S>,
        J: IntoIterator<Item = T>,
        S: Into<String>,
        T: Into<String>,
    {
        self.extra_fds.push(Fd::new(lhs, rhs));
        self
    }

    /// Declares the semantic entity name for the given identifying
    /// attributes (see [`RelationSchema::entity_names`]).
    pub fn name_entity<I, S>(&mut self, key_attrs: I, name: impl Into<String>) -> &mut Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.entity_names.push((key_attrs.into_iter().map(Into::into).collect(), name.into()));
        self
    }

    /// The declared entity name for an identifying attribute set, if any
    /// (compared as case-insensitive sets).
    pub fn entity_name_for<'a, I>(&self, key_attrs: I) -> Option<&str>
    where
        I: IntoIterator<Item = &'a str>,
    {
        let wanted: std::collections::BTreeSet<String> =
            key_attrs.into_iter().map(str::to_lowercase).collect();
        self.entity_names
            .iter()
            .find(|(attrs, _)| {
                attrs.iter().map(|a| a.to_lowercase()).collect::<std::collections::BTreeSet<_>>()
                    == wanted
            })
            .map(|(_, name)| name.as_str())
    }

    /// Position of an attribute by case-insensitive name.
    pub fn attr_index(&self, name: &str) -> Option<usize> {
        self.attrs.iter().position(|a| a.name.eq_ignore_ascii_case(name))
    }

    /// Canonical attribute name for a case-insensitive lookup.
    pub fn canonical_attr(&self, name: &str) -> Option<&str> {
        self.attr_index(name).map(|i| self.attrs[i].name.as_str())
    }

    /// True if `name` equals this relation's name, case-insensitively.
    pub fn is_named(&self, name: &str) -> bool {
        self.name.eq_ignore_ascii_case(name)
    }

    /// All attribute names in declaration order.
    pub fn attr_names(&self) -> impl Iterator<Item = &str> {
        self.attrs.iter().map(|a| a.name.as_str())
    }

    /// The full FD set of this relation: `PK -> all` plus `extra_fds`,
    /// expressed over this relation's attributes.
    pub fn fd_set(&self) -> FdSet {
        let mut fds = FdSet::new(self.attr_names().map(str::to_string));
        if !self.primary_key.is_empty() {
            let rhs: Vec<String> = self
                .attr_names()
                .filter(|a| !self.primary_key.iter().any(|k| k.eq_ignore_ascii_case(a)))
                .map(str::to_string)
                .collect();
            if !rhs.is_empty() {
                fds.add(Fd::new(self.primary_key.clone(), rhs));
            }
        }
        for fd in &self.extra_fds {
            fds.add(fd.clone());
        }
        fds
    }

    /// Validates internal consistency: PK/FK attributes must exist, FK arity
    /// must match. Called by [`crate::Database::add_relation`].
    pub fn validate(&self) -> Result<()> {
        for k in &self.primary_key {
            if self.attr_index(k).is_none() {
                return Err(Error::InvalidSchema(format!(
                    "primary key attribute `{k}` not in relation `{}`",
                    self.name
                )));
            }
        }
        for fk in &self.foreign_keys {
            if fk.attrs.len() != fk.ref_attrs.len() || fk.attrs.is_empty() {
                return Err(Error::InvalidSchema(format!(
                    "foreign key arity mismatch in `{}`",
                    self.name
                )));
            }
            for a in &fk.attrs {
                if self.attr_index(a).is_none() {
                    return Err(Error::InvalidSchema(format!(
                        "foreign key attribute `{a}` not in relation `{}`",
                        self.name
                    )));
                }
            }
        }
        for fd in &self.extra_fds {
            for a in fd.lhs.iter().chain(fd.rhs.iter()) {
                if self.attr_index(a).is_none() {
                    return Err(Error::InvalidSchema(format!(
                        "FD attribute `{a}` not in relation `{}`",
                        self.name
                    )));
                }
            }
        }
        Ok(())
    }
}

/// A whole database schema: an ordered collection of relation schemas.
#[derive(Debug, Clone, Default)]
pub struct DatabaseSchema {
    /// Relations in declaration order.
    pub relations: Vec<RelationSchema>,
}

impl DatabaseSchema {
    /// Creates an empty schema.
    pub fn new() -> Self {
        Self::default()
    }

    /// Looks up a relation by case-insensitive name.
    pub fn relation(&self, name: &str) -> Option<&RelationSchema> {
        self.relations.iter().find(|r| r.is_named(name))
    }

    /// Index of a relation by case-insensitive name.
    pub fn relation_index(&self, name: &str) -> Option<usize> {
        self.relations.iter().position(|r| r.is_named(name))
    }

    /// Validates all relations plus cross-relation FK targets.
    pub fn validate(&self) -> Result<()> {
        for r in &self.relations {
            r.validate()?;
            for fk in &r.foreign_keys {
                let target = self.relation(&fk.ref_relation).ok_or_else(|| {
                    Error::InvalidSchema(format!(
                        "relation `{}` references unknown relation `{}`",
                        r.name, fk.ref_relation
                    ))
                })?;
                for a in &fk.ref_attrs {
                    if target.attr_index(a).is_none() {
                        return Err(Error::InvalidSchema(format!(
                            "relation `{}` references unknown attribute `{}.{a}`",
                            r.name, fk.ref_relation
                        )));
                    }
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn student() -> RelationSchema {
        let mut s = RelationSchema::new("Student");
        s.add_attr("Sid", AttrType::Text)
            .add_attr("Sname", AttrType::Text)
            .add_attr("Age", AttrType::Int);
        s.set_primary_key(["Sid"]);
        s
    }

    #[test]
    fn case_insensitive_lookup() {
        let s = student();
        assert_eq!(s.attr_index("sname"), Some(1));
        assert_eq!(s.canonical_attr("SNAME"), Some("Sname"));
        assert!(s.is_named("student"));
    }

    #[test]
    fn fd_set_includes_key_fd() {
        let s = student();
        let fds = s.fd_set();
        let closure = fds.closure(["Sid".to_string()].into_iter().collect());
        assert!(closure.contains("Sname"));
        assert!(closure.contains("Age"));
    }

    #[test]
    fn validate_rejects_bad_pk() {
        let mut s = student();
        s.set_primary_key(["Nope"]);
        assert!(s.validate().is_err());
    }

    #[test]
    fn validate_rejects_unknown_fk_target() {
        let mut db = DatabaseSchema::new();
        let mut e = RelationSchema::new("Enrol");
        e.add_attr("Sid", AttrType::Text);
        e.set_primary_key(["Sid"]);
        e.add_foreign_key(["Sid"], "Student", ["Sid"]);
        db.relations.push(e);
        assert!(db.validate().is_err());
        db.relations.push(student());
        assert!(db.validate().is_ok());
    }

    #[test]
    fn validate_rejects_fk_arity_mismatch() {
        let mut e = RelationSchema::new("Enrol");
        e.add_attr("Sid", AttrType::Text);
        e.set_primary_key(["Sid"]);
        e.foreign_keys.push(ForeignKey {
            attrs: vec!["Sid".into()],
            ref_relation: "Student".into(),
            ref_attrs: vec!["Sid".into(), "X".into()],
        });
        assert!(e.validate().is_err());
    }
}
