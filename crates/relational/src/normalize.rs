//! Algorithm 1 (NormalizeDB): the normalized view `D'` of an unnormalized
//! database schema `D`, plus the `D <-> D'` mappings of Table 1.
//!
//! For each relation of `D` that is already in 3NF (w.r.t. its declared
//! FDs) the view contains it unchanged. Each non-3NF relation is
//! decomposed by 3NF synthesis; every decomposed relation is recorded as a
//! *projection* of its original (`Student' = Π_{Sid,Sname,Age}(Enrolment)`).
//! Finally, derived relations with the same key are merged.
//!
//! Foreign keys between derived relations are inferred by key containment,
//! which relies on the (paper-wide) convention that a foreign-key
//! attribute carries the same name as the key it references — true of the
//! university, TPC-H, and ACMDL schemas alike.

use std::collections::BTreeSet;

use crate::fd::Attrs;
use crate::schema::{DatabaseSchema, RelationSchema};

/// One projection mapping `derived ⊆ Π_attrs(original)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SourceProjection {
    /// Original (unnormalized) relation name.
    pub original: String,
    /// Projected attributes (canonical names, in derived-schema order).
    pub attrs: Vec<String>,
    /// Whether the projection requires duplicate elimination: false iff
    /// the projected attributes contain a key of the original relation.
    pub distinct: bool,
}

/// A relation of the normalized view `D'` with its mapping(s) back to `D`.
#[derive(Debug, Clone)]
pub struct DerivedRelation {
    /// Schema of the derived relation (name, attrs, key, inferred FKs).
    pub schema: RelationSchema,
    /// Projections producing this relation. A merged relation (same key
    /// from several originals) carries one source per original.
    pub sources: Vec<SourceProjection>,
    /// True when the relation is carried over unchanged (already 3NF).
    pub identity: bool,
}

impl DerivedRelation {
    /// The source projection covering all of `needed` (preferring
    /// identity/first sources), if a single one exists.
    pub fn source_covering(&self, needed: &[&str]) -> Option<&SourceProjection> {
        self.sources
            .iter()
            .find(|s| needed.iter().all(|n| s.attrs.iter().any(|a| a.eq_ignore_ascii_case(n))))
    }
}

/// The normalized view `D'` of a database schema `D`.
#[derive(Debug, Clone)]
pub struct NormalizedView {
    /// Derived relations, deterministically ordered.
    pub relations: Vec<DerivedRelation>,
}

fn lower_set<'a, I: IntoIterator<Item = &'a String>>(attrs: I) -> BTreeSet<String> {
    attrs.into_iter().map(|a| a.to_lowercase()).collect()
}

impl NormalizedView {
    /// True if every relation of the schema is in 3NF under its declared
    /// FDs — i.e. the database needs no normalized view (Algorithm 2 takes
    /// the simple branch).
    pub fn is_normalized(schema: &DatabaseSchema) -> bool {
        schema.relations.iter().all(|r| r.fd_set().is_3nf())
    }

    /// Runs Algorithm 1 on the schema.
    pub fn build(schema: &DatabaseSchema) -> Self {
        let mut relations: Vec<DerivedRelation> = Vec::new();

        for rel in &schema.relations {
            let fds = rel.fd_set();
            if fds.is_3nf() {
                relations.push(DerivedRelation {
                    schema: rel.clone(),
                    sources: vec![SourceProjection {
                        original: rel.name.clone(),
                        attrs: rel.attr_names().map(str::to_string).collect(),
                        distinct: false,
                    }],
                    identity: true,
                });
                continue;
            }
            for (heading, key) in fds.synthesize_3nf() {
                relations.push(make_derived(rel, &heading, &key));
            }
        }

        merge_same_key(&mut relations);
        disambiguate_names(&mut relations);
        infer_foreign_keys(&mut relations, schema);
        relations.sort_by(|a, b| a.schema.name.cmp(&b.schema.name));
        NormalizedView { relations }
    }

    /// Looks up a derived relation by case-insensitive name.
    pub fn relation(&self, name: &str) -> Option<&DerivedRelation> {
        self.relations.iter().find(|r| r.schema.is_named(name))
    }

    /// All derived relations that project from `original`.
    pub fn derived_from(&self, original: &str) -> Vec<&DerivedRelation> {
        self.relations
            .iter()
            .filter(|r| r.sources.iter().any(|s| s.original.eq_ignore_ascii_case(original)))
            .collect()
    }

    /// The schema of the view (used to build the ORM graph of `D'`).
    pub fn schema(&self) -> DatabaseSchema {
        DatabaseSchema { relations: self.relations.iter().map(|r| r.schema.clone()).collect() }
    }
}

/// Builds one synthesized relation: heading/key from the FD synthesis,
/// attribute order and types from the original, name `Original__key`.
fn make_derived(original: &RelationSchema, heading: &Attrs, key: &Attrs) -> DerivedRelation {
    let mut schema = RelationSchema::new(derived_name(original, key));
    let mut attrs_in_order = Vec::new();
    for a in &original.attrs {
        if heading.contains(&a.name) {
            schema.add_attr(a.name.clone(), a.ty);
            attrs_in_order.push(a.name.clone());
        }
    }
    schema.set_primary_key(key.iter().cloned());

    // DISTINCT is unnecessary iff the projection keeps a key of the
    // original relation (then tuples are already unique).
    let orig_key = lower_set(&original.primary_key.to_vec());
    let kept = lower_set(&attrs_in_order.to_vec());
    let distinct = !orig_key.is_subset(&kept) || orig_key.is_empty();

    DerivedRelation {
        schema,
        sources: vec![SourceProjection {
            original: original.name.clone(),
            attrs: attrs_in_order,
            distinct,
        }],
        identity: false,
    }
}

fn derived_name(original: &RelationSchema, key: &Attrs) -> String {
    if let Some(name) = original.entity_name_for(key.iter().map(String::as_str)) {
        return name.to_string();
    }
    let key_part: Vec<&str> = key.iter().map(String::as_str).collect();
    format!("{}__{}", original.name, key_part.join("_"))
}

/// Merges derived relations whose keys are equal (Algorithm 1, lines 9-11).
fn merge_same_key(relations: &mut Vec<DerivedRelation>) {
    let mut merged: Vec<DerivedRelation> = Vec::new();
    for rel in relations.drain(..) {
        let key = lower_set(&rel.schema.primary_key.to_vec());
        if let Some(existing) =
            merged.iter_mut().find(|m| lower_set(&m.schema.primary_key.to_vec()) == key)
        {
            // Extend heading with any new attributes, keep all sources.
            for attr in &rel.schema.attrs {
                if existing.schema.attr_index(&attr.name).is_none() {
                    existing.schema.add_attr(attr.name.clone(), attr.ty);
                }
            }
            existing.sources.extend(rel.sources);
            existing.identity = existing.identity && rel.identity;
        } else {
            merged.push(rel);
        }
    }
    *relations = merged;
}

/// Ensures derived-relation names are unique after merging (two distinct
/// keys may carry the same entity-name hint by mistake).
fn disambiguate_names(relations: &mut [DerivedRelation]) {
    let mut seen: Vec<String> = Vec::new();
    for rel in relations.iter_mut() {
        let mut name = rel.schema.name.clone();
        let mut n = 1;
        while seen.iter().any(|s| s.eq_ignore_ascii_case(&name)) {
            n += 1;
            name = format!("{}_{n}", rel.schema.name);
        }
        rel.schema.name = name.clone();
        seen.push(name);
    }
}

/// Adds `A -> B` foreign keys between derived relations:
///
/// * **key containment** — `key(B) ⊆ attrs(A)` (the name-based
///   convention described in the module docs); or
/// * **FD closure** — `A` and `B` share attributes `S` and, under the FD
///   set of an original relation both project from, `S -> key(B)`. This
///   covers views built from *discovered* FDs, where an instance may
///   exhibit several equivalent keys and the decomposition does not
///   always carry `key(B)` into `A` verbatim.
type RelMeta = (String, Vec<String>, Vec<String>, Vec<String>);

fn infer_foreign_keys(relations: &mut [DerivedRelation], schema: &DatabaseSchema) {
    let meta: Vec<RelMeta> = relations
        .iter()
        .map(|r| {
            (
                r.schema.name.clone(),
                r.schema.primary_key.clone(),
                r.schema.attr_names().map(str::to_string).collect(),
                r.sources.iter().map(|s| s.original.clone()).collect(),
            )
        })
        .collect();

    for (ai, rel) in relations.iter_mut().enumerate() {
        let own_key = lower_set(&rel.schema.primary_key.to_vec());
        let own_originals = meta[ai].3.clone();
        for (bi, (target, target_key, target_attrs, target_originals)) in meta.iter().enumerate() {
            if ai == bi || target_key.is_empty() {
                continue;
            }
            let tk = lower_set(&target_key.to_vec());
            if tk == own_key {
                continue;
            }
            if target_key.iter().all(|k| rel.schema.attr_index(k).is_some()) {
                rel.schema.add_foreign_key(
                    target_key.to_vec(),
                    target.clone(),
                    target_key.to_vec(),
                );
                continue;
            }
            // FD-closure rule over a shared original.
            let shared: Vec<String> = target_attrs
                .iter()
                .filter(|a| rel.schema.attr_index(a).is_some())
                .cloned()
                .collect();
            if shared.is_empty() {
                continue;
            }
            let determined = own_originals.iter().any(|o| {
                if !target_originals.iter().any(|t| t.eq_ignore_ascii_case(o)) {
                    return false;
                }
                let Some(orig) = schema.relation(o) else { return false };
                let fds = orig.fd_set();
                let closure = fds.closure(shared.iter().cloned().collect());
                target_key.iter().all(|k| closure.contains(k))
            });
            if determined {
                rel.schema.add_foreign_key(shared.clone(), target.clone(), shared);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::AttrType;

    /// The paper's Figure 8 database: a single unnormalized relation.
    fn enrolment_schema() -> DatabaseSchema {
        let mut r = RelationSchema::new("Enrolment");
        r.add_attr("Sid", AttrType::Text)
            .add_attr("Sname", AttrType::Text)
            .add_attr("Age", AttrType::Int)
            .add_attr("Code", AttrType::Text)
            .add_attr("Title", AttrType::Text)
            .add_attr("Credit", AttrType::Float)
            .add_attr("Grade", AttrType::Text);
        r.set_primary_key(["Sid", "Code"]);
        r.add_fd(["Sid"], ["Sname", "Age"]);
        r.add_fd(["Code"], ["Title", "Credit"]);
        DatabaseSchema { relations: vec![r] }
    }

    #[test]
    fn enrolment_is_not_normalized() {
        assert!(!NormalizedView::is_normalized(&enrolment_schema()));
    }

    #[test]
    fn example8_decomposition() {
        // Example 8: Enrolment decomposes into Student', Enrol', Course'.
        let view = NormalizedView::build(&enrolment_schema());
        assert_eq!(view.relations.len(), 3, "{view:#?}");

        let student = view
            .relations
            .iter()
            .find(|r| r.schema.primary_key == vec!["Sid".to_string()])
            .expect("Student' present");
        let names: Vec<&str> = student.schema.attr_names().collect();
        assert_eq!(names, vec!["Sid", "Sname", "Age"]);
        assert!(student.sources[0].distinct, "Student' projection needs DISTINCT");

        let enrol = view
            .relations
            .iter()
            .find(|r| r.schema.primary_key.len() == 2)
            .expect("Enrol' present");
        let names: Vec<&str> = enrol.schema.attr_names().collect();
        assert_eq!(names, vec!["Sid", "Code", "Grade"]);
        assert!(!enrol.sources[0].distinct, "Enrol' keeps the original key: no DISTINCT");

        // Figure 9: Enrol' references Student' and Course'.
        assert_eq!(enrol.schema.foreign_keys.len(), 2);
    }

    #[test]
    fn already_normalized_relation_is_identity() {
        let mut r = RelationSchema::new("Region");
        r.add_attr("regionkey", AttrType::Int).add_attr("rname", AttrType::Text);
        r.set_primary_key(["regionkey"]);
        let schema = DatabaseSchema { relations: vec![r] };
        assert!(NormalizedView::is_normalized(&schema));
        let view = NormalizedView::build(&schema);
        assert_eq!(view.relations.len(), 1);
        assert!(view.relations[0].identity);
        assert_eq!(view.relations[0].schema.name, "Region");
    }

    #[test]
    fn same_key_relations_from_different_originals_merge() {
        // Two unnormalized relations both embedding nationkey -> regionkey.
        let mut a = RelationSchema::new("Supplier");
        a.add_attr("suppkey", AttrType::Int)
            .add_attr("sname", AttrType::Text)
            .add_attr("nationkey", AttrType::Int)
            .add_attr("regionkey", AttrType::Int);
        a.set_primary_key(["suppkey"]);
        a.add_fd(["nationkey"], ["regionkey"]);
        let mut b = RelationSchema::new("Customer");
        b.add_attr("custkey", AttrType::Int)
            .add_attr("cname", AttrType::Text)
            .add_attr("nationkey", AttrType::Int)
            .add_attr("regionkey", AttrType::Int);
        b.set_primary_key(["custkey"]);
        b.add_fd(["nationkey"], ["regionkey"]);

        let view = NormalizedView::build(&DatabaseSchema { relations: vec![a, b] });
        let nation: Vec<&DerivedRelation> = view
            .relations
            .iter()
            .filter(|r| r.schema.primary_key == vec!["nationkey".to_string()])
            .collect();
        assert_eq!(nation.len(), 1, "nationkey-keyed relations merged: {view:#?}");
        assert_eq!(nation[0].sources.len(), 2);

        // Supplier' and Customer' both reference the merged Nation'.
        let supplier = view
            .relations
            .iter()
            .find(|r| r.schema.primary_key == vec!["suppkey".to_string()])
            .unwrap();
        assert!(supplier
            .schema
            .foreign_keys
            .iter()
            .any(|fk| fk.ref_relation == nation[0].schema.name));
    }

    #[test]
    fn source_covering_picks_single_projection() {
        let view = NormalizedView::build(&enrolment_schema());
        let student = view
            .relations
            .iter()
            .find(|r| r.schema.primary_key == vec!["Sid".to_string()])
            .unwrap();
        assert!(student.source_covering(&["Sid", "Sname"]).is_some());
        assert!(student.source_covering(&["Sid", "Grade"]).is_none());
    }
}
