#![warn(missing_docs)]
//! # aqks — Aggregate Keyword Search over Relational Databases
//!
//! A from-scratch Rust reproduction of *"Answering Keyword Queries
//! involving Aggregates and GROUPBY on Relational Databases"* (Zeng, Lee,
//! Ling — EDBT 2016).
//!
//! This facade crate re-exports the workspace's public API:
//!
//! * [`relational`] — in-memory relational engine, FD theory, 3NF synthesis
//! * [`sqlgen`] — SQL AST, renderer, executor
//! * [`orm`] — ORM schema graph (object/relationship/mixed/component)
//! * [`core`] — the paper's semantic keyword-search engine
//! * [`sqak`] — the SQAK baseline the paper compares against
//! * [`datasets`] — university / TPC-H / ACM-DL datasets and denormalizers
//! * [`analyze`] — static semantic analyzer for generated SQL plans
//! * [`plancheck`] — static verifier for physical plans (properties,
//!   invariants, fingerprints)
//! * [`equiv`] — verified plan canonicalization, equivalence classes,
//!   and shared-subplan execution
//! * [`guard`] — resource budgets, cooperative cancellation, failpoints
//! * [`obs`] — pipeline tracing, always-on metrics + flight recorder,
//!   Prometheus/JSON exposition
//!
//! ## Quickstart
//!
//! ```
//! use aqks::datasets::university;
//! use aqks::core::Engine;
//!
//! let db = university::normalized();
//! let engine = Engine::new(db).unwrap();
//! let answers = engine.answer("Green SUM Credit", 1).unwrap();
//! assert!(!answers.is_empty());
//! println!("{}", answers[0].sql_text);
//! ```
//!
//! To keep an adversarial query inside a box, answer it under a
//! [`guard::Budget`]: exhaustion degrades gracefully into the completed
//! interpretations plus a structured report instead of an error.
//!
//! ```
//! use aqks::core::{Budget, Engine};
//! use aqks::datasets::university;
//! use std::time::Duration;
//!
//! let engine = Engine::new(university::normalized()).unwrap();
//! let budget = Budget::unlimited()
//!     .with_timeout(Duration::from_millis(250))
//!     .with_max_rows(100_000);
//! let governed = engine.answer_governed("Green SUM Credit", 1, &budget).unwrap();
//! match governed.exhaustion {
//!     None => println!("{} answer(s) within budget", governed.value.len()),
//!     Some(ex) => println!("stopped early: {ex}"),
//! }
//! ```

pub use aqks_analyze as analyze;
pub use aqks_core as core;
pub use aqks_datasets as datasets;
pub use aqks_equiv as equiv;
pub use aqks_guard as guard;
pub use aqks_obs as obs;
pub use aqks_orm as orm;
pub use aqks_plancheck as plancheck;
pub use aqks_relational as relational;
pub use aqks_sqak as sqak;
pub use aqks_sqlgen as sqlgen;
