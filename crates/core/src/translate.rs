//! Pattern translation into SQL (Sections 3.1.3, 3.2 and 4).
//!
//! The two ORA-semantics rules that distinguish this translation from a
//! naive join — and that fix SQAK's wrong answers — are explicit,
//! switchable options so the benchmark suite can ablate them:
//!
//! * **relationship duplicate elimination** ([`TranslateOptions::dedup_relationships`]):
//!   a relationship node adjacent to *fewer* participating object/mixed
//!   nodes in the pattern than in the ORM schema graph is replaced by a
//!   `SELECT DISTINCT fk…` projection (Example 4/6 — without it the same
//!   lecturer is counted once per textbook);
//! * **object-identifier grouping** ([`TranslateOptions::group_by_object_id`]):
//!   disambiguation GROUPBYs bind to the object's *id*, not the matched
//!   attribute value (Example 5 — without it the two Greens merge).
//!
//! For unnormalized databases a [`aqks_relational::NormalizedView`] is
//! supplied and every FROM item becomes a projection subquery over the
//! original relations (Section 4); the rewrite rules of Section 4.1 then
//! simplify the result (see [`crate::unnormalized`]).

use std::collections::HashMap;

use aqks_orm::{NodeKind, OrmGraph};
use aqks_relational::{DatabaseSchema, NormalizedView};
use aqks_sqlgen::{ColumnRef, Predicate, SelectItem, SelectStatement, TableExpr};

use crate::error::CoreError;
use crate::pattern::{NodeAnnotation, QueryPattern};

/// Switches for the two ORA-semantics translation rules (ablations).
#[derive(Debug, Clone)]
pub struct TranslateOptions {
    /// Project relationship relations onto the participating foreign keys
    /// (with DISTINCT) when the pattern uses a subset of participants.
    pub dedup_relationships: bool,
    /// Ground disambiguation GROUPBYs on object identifiers; when false
    /// the condition attribute is used instead (SQAK-like behaviour).
    pub group_by_object_id: bool,
}

impl Default for TranslateOptions {
    fn default() -> Self {
        TranslateOptions { dedup_relationships: true, group_by_object_id: true }
    }
}

/// A translated pattern plus the metadata the Section-4.1 rewrite rules
/// need: which FROM aliases are derived projections and what their
/// derived keys are (keys must survive Rule 1's pruning, or DISTINCT
/// semantics would change).
#[derive(Debug, Clone)]
pub struct Translation {
    /// The SQL statement.
    pub stmt: SelectStatement,
    /// FROM alias -> derived-relation key attributes (unnormalized only).
    pub derived_keys: HashMap<String, Vec<String>>,
}

/// Translates one annotated pattern into a SQL statement.
///
/// `view` is `Some` for an unnormalized database: FROM items are then
/// projection subqueries over the original relations per the `D' -> D`
/// mappings.
pub fn translate(
    pattern: &QueryPattern,
    graph: &OrmGraph,
    namespace: &DatabaseSchema,
    view: Option<&NormalizedView>,
    opts: &TranslateOptions,
) -> Result<SelectStatement, CoreError> {
    translate_ex(pattern, graph, namespace, view, opts).map(|t| t.stmt)
}

/// Like [`translate`] but also returning rewrite metadata.
pub fn translate_ex(
    pattern: &QueryPattern,
    graph: &OrmGraph,
    namespace: &DatabaseSchema,
    view: Option<&NormalizedView>,
    opts: &TranslateOptions,
) -> Result<Translation, CoreError> {
    aqks_guard::failpoint!("translate");
    let aliases = assign_aliases(pattern);
    let mut derived_keys: HashMap<String, Vec<String>> = HashMap::new();
    let mut stmt = SelectStatement::new();

    // ---- Required attributes per (node, relation) -------------------------
    // relation is the node's primary relation or one of its components.
    let mut required: HashMap<(usize, String), Vec<String>> = HashMap::new();
    let mut require = |node: usize, relation: &str, attr: &str| {
        let key = (node, relation.to_lowercase());
        let list = required.entry(key).or_default();
        if !list.iter().any(|a| a.eq_ignore_ascii_case(attr)) {
            list.push(attr.to_string());
        }
    };
    for e in &pattern.edges {
        let oe = graph.edge(e.orm_edge);
        for a in &oe.a_attrs {
            require(e.a, &oe.a_rel, a);
        }
        for b in &oe.b_attrs {
            require(e.b, &oe.b_rel, b);
        }
    }
    for n in &pattern.nodes {
        if let Some(c) = &n.condition {
            require(n.id, &c.relation, &c.attribute);
        }
        for ann in &n.annotations {
            match ann {
                NodeAnnotation::Agg { relation, attribute, .. } => {
                    require(n.id, relation, attribute)
                }
                NodeAnnotation::GroupBy { relation, attributes }
                | NodeAnnotation::Distinguish { relation, attributes } => {
                    for a in attributes {
                        require(n.id, relation, a);
                    }
                }
            }
        }
    }

    // ---- FROM items, components, and alias resolution ---------------------
    // (node, relation-lowercase) -> alias used in column references.
    let mut alias_of: HashMap<(usize, String), String> = HashMap::new();

    for n in &pattern.nodes {
        let node_alias = aliases[n.id].clone();
        alias_of.insert((n.id, n.relation.to_lowercase()), node_alias.clone());

        let node_required: Vec<String> =
            required.get(&(n.id, n.relation.to_lowercase())).cloned().unwrap_or_default();

        // Relationship duplicate elimination (Section 3.1.3 FROM rule).
        let pattern_participants = participant_count(pattern, n.id);
        let graph_participants = graph.adjacent_object_mixed(n.orm).len();
        let dedup = opts.dedup_relationships
            && matches!(n.kind, NodeKind::Relationship)
            && pattern_participants < graph_participants
            && !node_required.is_empty();

        let table =
            build_from_item(&n.relation, &node_alias, dedup, &node_required, namespace, view)?;
        if view.is_some() {
            if let Some(rel) = namespace.relation(&n.relation) {
                derived_keys.insert(node_alias.clone(), rel.primary_key.clone());
            }
        }
        stmt.from.push(table);

        // Components referenced by conditions/annotations join the node's
        // primary relation on their parent foreign key.
        let comps: Vec<String> = required
            .keys()
            .filter(|(id, rel)| *id == n.id && *rel != n.relation.to_lowercase())
            .map(|(_, rel)| rel.clone())
            .collect();
        for comp in comps {
            let comp_schema = namespace
                .relation(&comp)
                .ok_or_else(|| CoreError::Schema(format!("unknown component `{comp}`")))?;
            let comp_alias = format!("{node_alias}_{}", stmt.from.len());
            let fk = comp_schema
                .foreign_keys
                .iter()
                .find(|fk| fk.ref_relation.eq_ignore_ascii_case(&n.relation))
                .ok_or_else(|| {
                    CoreError::Schema(format!(
                        "component `{comp}` has no foreign key to `{}`",
                        n.relation
                    ))
                })?;
            stmt.from.push(TableExpr::Relation {
                name: comp_schema.name.clone(),
                alias: comp_alias.clone(),
            });
            for (ca, pa) in fk.attrs.iter().zip(&fk.ref_attrs) {
                stmt.predicates.push(Predicate::JoinEq(
                    ColumnRef::new(comp_alias.clone(), ca.clone()),
                    ColumnRef::new(node_alias.clone(), pa.clone()),
                ));
            }
            alias_of.insert((n.id, comp.clone()), comp_alias);
        }
    }

    let col = |node: usize, relation: &str, attr: &str| -> Result<ColumnRef, CoreError> {
        let alias = alias_of
            .get(&(node, relation.to_lowercase()))
            .ok_or_else(|| CoreError::Schema(format!("no alias for `{relation}`")))?;
        Ok(ColumnRef::new(alias.clone(), attr))
    };

    // ---- WHERE: joins along pattern edges + value conditions ---------------
    for e in &pattern.edges {
        let oe = graph.edge(e.orm_edge);
        for (x, y) in oe.a_attrs.iter().zip(&oe.b_attrs) {
            stmt.predicates
                .push(Predicate::JoinEq(col(e.a, &oe.a_rel, x)?, col(e.b, &oe.b_rel, y)?));
        }
    }
    for n in &pattern.nodes {
        if let Some(c) = &n.condition {
            stmt.predicates
                .push(Predicate::Contains(col(n.id, &c.relation, &c.attribute)?, c.term.clone()));
        }
    }

    // ---- SELECT and GROUP BY ------------------------------------------------
    let mut agg_aliases: Vec<String> = Vec::new();
    for n in &pattern.nodes {
        for ann in &n.annotations {
            match ann {
                NodeAnnotation::GroupBy { relation, attributes } => {
                    for a in attributes {
                        let c = col(n.id, relation, a)?;
                        stmt.items.push(SelectItem::Column { col: c.clone(), alias: None });
                        stmt.group_by.push(c);
                    }
                }
                NodeAnnotation::Distinguish { relation, attributes } => {
                    if opts.group_by_object_id {
                        for a in attributes {
                            let c = col(n.id, relation, a)?;
                            stmt.items.push(SelectItem::Column { col: c.clone(), alias: None });
                            stmt.group_by.push(c);
                        }
                    } else if let Some(c) = &n.condition {
                        // Ablation: group by the matched attribute value,
                        // as SQAK does.
                        let cr = col(n.id, &c.relation, &c.attribute)?;
                        stmt.items.push(SelectItem::Column { col: cr.clone(), alias: None });
                        stmt.group_by.push(cr);
                    }
                }
                NodeAnnotation::Agg { .. } => {}
            }
        }
    }
    for n in &pattern.nodes {
        for ann in &n.annotations {
            if let NodeAnnotation::Agg { func, relation, attribute } = ann {
                let mut alias = format!("{}{}", func.alias_prefix(), attribute);
                let mut k = 1;
                while agg_aliases.iter().any(|a| a.eq_ignore_ascii_case(&alias)) {
                    k += 1;
                    alias = format!("{}{}{k}", func.alias_prefix(), attribute);
                }
                agg_aliases.push(alias.clone());
                stmt.items.push(SelectItem::Aggregate {
                    func: *func,
                    arg: col(n.id, relation, attribute)?,
                    distinct: false,
                    alias,
                });
            }
        }
    }

    // Non-aggregate query: select the terminal nodes' identifiers and
    // conditioned attributes.
    if stmt.items.is_empty() {
        stmt.distinct = true;
        for n in &pattern.nodes {
            if !n.terminal {
                continue;
            }
            if let Some(rel) = namespace.relation(&n.relation) {
                for k in &rel.primary_key {
                    stmt.items
                        .push(SelectItem::Column { col: col(n.id, &n.relation, k)?, alias: None });
                }
            }
        }
        if stmt.items.is_empty() {
            return Err(CoreError::Schema("nothing to select".into()));
        }
    }

    // ---- Nested aggregates (Section 3.2) -------------------------------------
    let mut out = stmt;
    let nested = &pattern.nested;
    for func in nested.iter().rev() {
        let inner_alias = out
            .items
            .iter()
            .find_map(|i| match i {
                SelectItem::Aggregate { alias, .. } => Some(alias.clone()),
                SelectItem::Column { .. } => None,
            })
            .ok_or_else(|| CoreError::Schema("nested aggregate has no inner aggregate".into()))?;
        let alias = format!("{}{}", func.alias_prefix(), inner_alias);
        out = SelectStatement {
            distinct: false,
            items: vec![SelectItem::Aggregate {
                func: *func,
                arg: ColumnRef::new("R", inner_alias),
                distinct: false,
                alias,
            }],
            from: vec![TableExpr::Derived { query: Box::new(out), alias: "R".into() }],
            predicates: vec![],
            group_by: vec![],
            ..Default::default()
        };
    }
    Ok(Translation { stmt: out, derived_keys })
}

/// Distinct object/mixed neighbours of `node` in the pattern.
fn participant_count(pattern: &QueryPattern, node: usize) -> usize {
    let mut seen = std::collections::HashSet::new();
    for m in pattern.neighbors(node) {
        if matches!(pattern.nodes[m].kind, NodeKind::Object | NodeKind::Mixed) {
            seen.insert(m);
        }
    }
    seen.len()
}

/// Builds the FROM item for one node.
fn build_from_item(
    relation: &str,
    alias: &str,
    dedup: bool,
    required: &[String],
    namespace: &DatabaseSchema,
    view: Option<&NormalizedView>,
) -> Result<TableExpr, CoreError> {
    match view {
        None => {
            if dedup {
                // (SELECT DISTINCT fk1, ..., fkx FROM R) alias
                let inner = SelectStatement {
                    distinct: true,
                    items: required
                        .iter()
                        .map(|a| SelectItem::Column {
                            col: ColumnRef::new(relation, a.clone()),
                            alias: None,
                        })
                        .collect(),
                    from: vec![TableExpr::Relation {
                        name: relation.to_string(),
                        alias: relation.to_string(),
                    }],
                    predicates: vec![],
                    group_by: vec![],
                    ..Default::default()
                };
                Ok(TableExpr::Derived { query: Box::new(inner), alias: alias.to_string() })
            } else {
                Ok(TableExpr::Relation { name: relation.to_string(), alias: alias.to_string() })
            }
        }
        Some(view) => from_item_via_view(relation, alias, dedup, required, namespace, view),
    }
}

/// FROM item for an unnormalized database: a projection subquery over the
/// original relation(s) of `relation`'s mapping (Section 4).
fn from_item_via_view(
    relation: &str,
    alias: &str,
    dedup: bool,
    required: &[String],
    namespace: &DatabaseSchema,
    view: &NormalizedView,
) -> Result<TableExpr, CoreError> {
    let derived = view
        .relation(relation)
        .ok_or_else(|| CoreError::Schema(format!("`{relation}` not in normalized view")))?;

    // Identity relations execute directly against the original database.
    if derived.identity && !dedup {
        return Ok(TableExpr::Relation {
            name: derived.sources[0].original.clone(),
            alias: alias.to_string(),
        });
    }

    let schema = namespace
        .relation(relation)
        .ok_or_else(|| CoreError::Schema(format!("`{relation}` missing from namespace")))?;
    // The paper's translation projects the full derived relation and lets
    // rewrite Rule 1 prune unused attributes; with `dedup` we project the
    // participating keys only, composing both DISTINCT rules.
    let projected: Vec<String> =
        if dedup { required.to_vec() } else { schema.attr_names().map(str::to_string).collect() };

    // Pick a minimal set of sources covering the projection (usually one).
    let needed: Vec<&str> = projected.iter().map(String::as_str).collect();
    if let Some(src) = derived.source_covering(&needed) {
        let inner = SelectStatement {
            distinct: dedup || src.distinct,
            items: projected
                .iter()
                .map(|a| SelectItem::Column {
                    col: ColumnRef::new(src.original.clone(), a.clone()),
                    alias: None,
                })
                .collect(),
            from: vec![TableExpr::Relation {
                name: src.original.clone(),
                alias: src.original.clone(),
            }],
            predicates: vec![],
            group_by: vec![],
            ..Default::default()
        };
        return Ok(TableExpr::Derived { query: Box::new(inner), alias: alias.to_string() });
    }

    // No single source covers: join sources on the derived key.
    let key = &schema.primary_key;
    let mut chosen: Vec<&aqks_relational::normalize::SourceProjection> = Vec::new();
    let mut covered: Vec<&str> = Vec::new();
    for _ in 0..derived.sources.len() {
        let best = derived
            .sources
            .iter()
            .filter(|s| !chosen.iter().any(|c| std::ptr::eq(*c, *s)))
            .max_by_key(|s| {
                needed
                    .iter()
                    .filter(|n| {
                        !covered.iter().any(|c| c.eq_ignore_ascii_case(n))
                            && s.attrs.iter().any(|a| a.eq_ignore_ascii_case(n))
                    })
                    .count()
            });
        let Some(best) = best else { break };
        chosen.push(best);
        for a in &best.attrs {
            if !covered.iter().any(|c| c.eq_ignore_ascii_case(a)) {
                covered.push(a);
            }
        }
        if needed.iter().all(|n| covered.iter().any(|c| c.eq_ignore_ascii_case(n))) {
            break;
        }
    }
    if !needed.iter().all(|n| covered.iter().any(|c| c.eq_ignore_ascii_case(n))) {
        return Err(CoreError::Schema(format!(
            "no source combination covers attributes of `{relation}`"
        )));
    }

    let mut inner = SelectStatement::new();
    for (si, src) in chosen.iter().enumerate() {
        let src_alias = format!("s{}", si + 1);
        let sub = SelectStatement {
            distinct: src.distinct,
            items: src
                .attrs
                .iter()
                .map(|a| SelectItem::Column {
                    col: ColumnRef::new(src.original.clone(), a.clone()),
                    alias: None,
                })
                .collect(),
            from: vec![TableExpr::Relation {
                name: src.original.clone(),
                alias: src.original.clone(),
            }],
            predicates: vec![],
            group_by: vec![],
            ..Default::default()
        };
        inner.from.push(TableExpr::Derived { query: Box::new(sub), alias: src_alias.clone() });
        if si > 0 {
            for k in key {
                inner.predicates.push(Predicate::JoinEq(
                    ColumnRef::new("s1", k.clone()),
                    ColumnRef::new(src_alias.clone(), k.clone()),
                ));
            }
        }
    }
    // Project the needed attributes, each from the first source holding it.
    inner.distinct = dedup;
    for a in &projected {
        let (si, _) = chosen
            .iter()
            .enumerate()
            .find(|(_, s)| s.attrs.iter().any(|x| x.eq_ignore_ascii_case(a)))
            .expect("covered above");
        inner.items.push(SelectItem::Column {
            col: ColumnRef::new(format!("s{}", si + 1), a.clone()),
            alias: None,
        });
    }
    Ok(TableExpr::Derived { query: Box::new(inner), alias: alias.to_string() })
}

/// Paper-style aliases: the relation's initial, numbered only when a
/// letter is shared (Course -> C; Enrol, Enrol -> E1, E2).
fn assign_aliases(pattern: &QueryPattern) -> Vec<String> {
    let initial = |s: &str| -> char {
        s.chars().find(|c| c.is_ascii_alphabetic()).unwrap_or('X').to_ascii_uppercase()
    };
    let mut counts: HashMap<char, usize> = HashMap::new();
    for n in &pattern.nodes {
        *counts.entry(initial(&n.relation)).or_default() += 1;
    }
    let mut seen: HashMap<char, usize> = HashMap::new();
    pattern
        .nodes
        .iter()
        .map(|n| {
            let c = initial(&n.relation);
            let k = seen.entry(c).or_default();
            *k += 1;
            if counts[&c] == 1 {
                c.to_string()
            } else {
                format!("{c}{k}")
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::annotate::disambiguate;
    use crate::matching::{Matcher, TermRole};
    use crate::pattern::generate_patterns;
    use crate::query::{KeywordQuery, Operator, Term};
    use crate::rank::rank_patterns;
    use aqks_datasets::university;
    use aqks_sqlgen::{execute, AggFunc};

    fn pipeline(q: &str) -> Vec<(QueryPattern, SelectStatement)> {
        let db = university::normalized();
        let graph = OrmGraph::build(&db.schema()).unwrap();
        let matcher = Matcher::normalized(&db);
        let query = KeywordQuery::parse(q).unwrap();
        let matches: Vec<_> = query
            .terms
            .iter()
            .enumerate()
            .map(|(i, t)| match t {
                Term::Basic(text) => {
                    let role = if query.is_operand(i) {
                        match query.terms[i - 1] {
                            Term::Op(Operator::Agg(AggFunc::Count))
                            | Term::Op(Operator::GroupBy) => TermRole::CountGroupByOperand,
                            _ => TermRole::AggOperand,
                        }
                    } else {
                        TermRole::Free
                    };
                    matcher.matches(&db, text, role).unwrap()
                }
                Term::Op(_) => Vec::new(),
            })
            .collect();
        let ps = generate_patterns(&query, &matches, &graph, &db.schema()).unwrap();
        let ps = rank_patterns(disambiguate(ps, &db.schema()));
        ps.into_iter()
            .map(|p| {
                let sql = translate(&p, &graph, &db.schema(), None, &TranslateOptions::default())
                    .unwrap();
                (p, sql)
            })
            .collect()
    }

    /// Q1 = {Green SUM Credit}: the top-ranked translation groups by Sid
    /// and returns 5.0 and 8.0 — not SQAK's merged 13.
    #[test]
    fn q1_distinguishes_greens() {
        let db = university::normalized();
        let (p, sql) = pipeline("Green SUM Credit").remove(0);
        assert!(
            sql.group_by.iter().any(|c| c.column.eq_ignore_ascii_case("Sid")),
            "top pattern groups by Sid: {} | {}",
            p.describe(),
            sql
        );
        let mut r = execute(&sql, &db).unwrap().sorted();
        let sums: Vec<String> =
            r.rows.drain(..).map(|row| row.last().unwrap().to_string()).collect();
        assert_eq!(sums, vec!["5.0", "8.0"]);
    }

    /// Q2 = {Java SUM Price}: the Teach node is projected DISTINCT on
    /// (Code, Bid), so the answer is 25, not SQAK's 35.
    #[test]
    fn q2_deduplicates_teach() {
        let db = university::normalized();
        let results = pipeline("Java SUM Price");
        let (_, sql) = results
            .iter()
            .find(|(p, _)| p.nodes.iter().any(|n| n.relation == "Teach"))
            .expect("textbook interpretation");
        let r = execute(sql, &db).unwrap();
        let total = r.column("sumPrice").unwrap()[0].clone();
        assert_eq!(total, aqks_relational::Value::Int(25), "{sql}\n{r}");
    }

    /// Without dedup (ablation) Q2 returns SQAK's incorrect 35.
    #[test]
    fn q2_ablation_reproduces_sqak_error() {
        let db = university::normalized();
        let graph = OrmGraph::build(&db.schema()).unwrap();
        let results = pipeline("Java SUM Price");
        let (p, _) = results
            .into_iter()
            .find(|(p, _)| p.nodes.iter().any(|n| n.relation == "Teach"))
            .unwrap();
        let opts = TranslateOptions { dedup_relationships: false, group_by_object_id: true };
        let sql = translate(&p, &graph, &db.schema(), None, &opts).unwrap();
        let r = execute(&sql, &db).unwrap();
        assert_eq!(r.column("sumPrice").unwrap()[0], &aqks_relational::Value::Int(35));
    }

    /// Example 5's SQL listing, structurally.
    #[test]
    fn example5_sql_shape() {
        let results = pipeline("Green George COUNT Code");
        let (p, sql) = results
            .iter()
            .find(|(p, _)| {
                p.nodes.iter().filter(|n| n.relation == "Student").count() == 2
                    && p.nodes.iter().any(|n| {
                        n.annotations
                            .iter()
                            .any(|a| matches!(a, NodeAnnotation::Distinguish { .. }))
                    })
            })
            .expect("per-Green pattern");
        let text = sql.to_string();
        assert!(text.contains("COUNT(") && text.contains("Code"), "{text}");
        assert!(text.contains("contains 'Green'") && text.contains("contains 'George'"), "{text}");
        assert!(text.contains("GROUP BY") && text.contains(".Sid"), "{text}");
        assert_eq!(sql.from.len(), 5, "{} | {text}", p.describe());

        // Executes to 1 row per Green: s2 -> 1 shared course, s3 -> 2.
        let db = university::normalized();
        let r = execute(sql, &db).unwrap().sorted();
        assert_eq!(r.len(), 2, "{r}");
        assert_eq!(r.rows[0].last().unwrap(), &aqks_relational::Value::Int(1));
        assert_eq!(r.rows[1].last().unwrap(), &aqks_relational::Value::Int(2));
    }

    /// Example 6: {COUNT Lecturer GROUPBY Course} produces the DISTINCT
    /// Teach projection and counts 2 lecturers for Java, 1 elsewhere.
    #[test]
    fn example6_sql() {
        let db = university::normalized();
        let (_, sql) = pipeline("COUNT Lecturer GROUPBY Course").remove(0);
        let text = sql.to_string();
        assert!(text.contains("SELECT DISTINCT"), "dedup projection present: {text}");
        let r = execute(&sql, &db).unwrap().sorted();
        assert_eq!(r.len(), 3);
        let counts: Vec<&aqks_relational::Value> = r.column("numLid").unwrap();
        assert_eq!(
            counts,
            vec![
                &aqks_relational::Value::Int(2),
                &aqks_relational::Value::Int(1),
                &aqks_relational::Value::Int(1)
            ]
        );
    }

    /// Example 7: nested AVG over COUNT returns 4/3.
    #[test]
    fn example7_nested_avg() {
        let db = university::normalized();
        let (_, sql) = pipeline("AVG COUNT Lecturer GROUPBY Course").remove(0);
        let r = execute(&sql, &db).unwrap();
        let avg = r.scalar().unwrap();
        assert_eq!(avg, &aqks_relational::Value::Float(4.0 / 3.0), "{sql}\n{r}");
    }

    /// Aliases follow the paper's letter(+number) convention.
    #[test]
    fn alias_convention() {
        let results = pipeline("Green George COUNT Code");
        let (p, sql) = &results
            .iter()
            .find(|(p, _)| p.nodes.iter().filter(|n| n.relation == "Student").count() == 2)
            .unwrap();
        let aliases: Vec<&str> = sql.from.iter().map(|f| f.alias()).collect();
        assert!(aliases.contains(&"C"), "{aliases:?} {}", p.describe());
        assert!(aliases.contains(&"S1") && aliases.contains(&"S2"), "{aliases:?}");
        assert!(aliases.contains(&"E1") && aliases.contains(&"E2"), "{aliases:?}");
    }
}
