//! Synthetic TPC-H generator for the simplified schema of Table 2.
//!
//! The paper's experiments do not depend on dbgen's value distributions;
//! they depend on *cardinality structure*. The generator plants exactly
//! the structure queries T1–T8 probe:
//!
//! * 8 parts whose name contains **"royal olive"**, appearing in
//!   [23, 22, 29, 27, 33, 35, 33, 27] distinct orders respectively — so
//!   the semantic engine returns those eight counts for T3 while SQAK
//!   returns their sum, 229, exactly as in Table 5;
//! * 13 **"yellow tomato"** parts with planted supplier account
//!   balances whose global maximum is 9844.00 (T4);
//! * one **"Indian black chocolate"** part supplied by exactly 4
//!   suppliers across 22 lineitems in distinct orders (T5: ours 4,
//!   SQAK 22);
//! * base lineitems in which each (part, supplier) pair recurs in 1–3
//!   distinct orders, so T6's per-supplier part counts are inflated for
//!   SQAK but not for the semantic engine;
//! * 3 **"pink rose"** / **"white rose"** part pairs sharing exactly one
//!   supplier each (T8: three answers of 1);
//! * 5 market segments (T7), 25 nations, 5 regions (T2).

use crate::rng::StdRng;
use std::collections::HashSet;

use aqks_relational::{AttrType, Database, Date, RelationSchema, Value};

use crate::words;

/// The planted per-part order counts for the "royal olive" parts (T3).
pub const ROYAL_OLIVE_ORDER_COUNTS: [usize; 8] = [23, 22, 29, 27, 33, 35, 33, 27];

/// The planted maximum supplier account balance among "yellow tomato"
/// suppliers (T4's SQAK answer).
pub const YELLOW_TOMATO_MAX_ACCTBAL: f64 = 9844.00;

/// Number of suppliers of the "Indian black chocolate" part (T5, ours).
pub const CHOCOLATE_SUPPLIERS: usize = 4;

/// Number of chocolate lineitems (T5, SQAK's inflated count).
pub const CHOCOLATE_LINEITEMS: usize = 22;

/// Generator parameters.
#[derive(Debug, Clone)]
pub struct TpchConfig {
    /// RNG seed; everything is deterministic given the seed.
    pub seed: u64,
    /// Total number of parts (≥ 40: the first 28 are planted).
    pub parts: usize,
    /// Total number of suppliers (≥ 40).
    pub suppliers: usize,
    /// Total number of customers.
    pub customers: usize,
    /// Total number of orders (≥ 300: planted lineitems draw on them).
    pub orders: usize,
    /// How many distinct parts each supplier stocks in the base workload.
    pub parts_per_supplier: usize,
    /// Maximum distinct orders a base (part, supplier) pair recurs in.
    pub max_orders_per_pair: usize,
}

impl TpchConfig {
    /// Small instance for unit/integration tests (sub-second end to end).
    pub fn small() -> Self {
        TpchConfig {
            seed: 42,
            parts: 120,
            suppliers: 40,
            customers: 60,
            orders: 400,
            parts_per_supplier: 12,
            max_orders_per_pair: 3,
        }
    }

    /// Paper-scale instance: 1000 suppliers each stocking ~80 parts, so
    /// Table 5's T6 row shape (1000 answers, SQAK heavily inflated)
    /// reproduces.
    pub fn paper_scale() -> Self {
        TpchConfig {
            seed: 42,
            parts: 2000,
            suppliers: 1000,
            customers: 3000,
            orders: 30_000,
            parts_per_supplier: 80,
            max_orders_per_pair: 3,
        }
    }
}

impl Default for TpchConfig {
    fn default() -> Self {
        TpchConfig::small()
    }
}

/// Builds the empty TPC-H schema of Table 2.
pub fn tpch_schema() -> Vec<RelationSchema> {
    let mut rels = Vec::new();

    let mut r = RelationSchema::new("Part");
    r.add_attr("partkey", AttrType::Int)
        .add_attr("pname", AttrType::Text)
        .add_attr("type", AttrType::Text)
        .add_attr("size", AttrType::Int)
        .add_attr("retailprice", AttrType::Float);
    r.set_primary_key(["partkey"]);
    rels.push(r);

    let mut r = RelationSchema::new("Supplier");
    r.add_attr("suppkey", AttrType::Int)
        .add_attr("sname", AttrType::Text)
        .add_attr("nationkey", AttrType::Int)
        .add_attr("acctbal", AttrType::Float);
    r.set_primary_key(["suppkey"]);
    r.add_foreign_key(["nationkey"], "Nation", ["nationkey"]);
    rels.push(r);

    let mut r = RelationSchema::new("Lineitem");
    r.add_attr("partkey", AttrType::Int)
        .add_attr("suppkey", AttrType::Int)
        .add_attr("orderkey", AttrType::Int)
        .add_attr("quantity", AttrType::Int);
    r.set_primary_key(["partkey", "suppkey", "orderkey"]);
    r.add_foreign_key(["partkey"], "Part", ["partkey"]);
    r.add_foreign_key(["suppkey"], "Supplier", ["suppkey"]);
    r.add_foreign_key(["orderkey"], "Order", ["orderkey"]);
    rels.push(r);

    let mut r = RelationSchema::new("Order");
    r.add_attr("orderkey", AttrType::Int)
        .add_attr("custkey", AttrType::Int)
        .add_attr("amount", AttrType::Float)
        .add_attr("date", AttrType::Date)
        .add_attr("priority", AttrType::Text);
    r.set_primary_key(["orderkey"]);
    r.add_foreign_key(["custkey"], "Customer", ["custkey"]);
    rels.push(r);

    let mut r = RelationSchema::new("Customer");
    r.add_attr("custkey", AttrType::Int)
        .add_attr("cname", AttrType::Text)
        .add_attr("nationkey", AttrType::Int)
        .add_attr("mktsegment", AttrType::Text);
    r.set_primary_key(["custkey"]);
    r.add_foreign_key(["nationkey"], "Nation", ["nationkey"]);
    rels.push(r);

    let mut r = RelationSchema::new("Nation");
    r.add_attr("nationkey", AttrType::Int)
        .add_attr("nname", AttrType::Text)
        .add_attr("regionkey", AttrType::Int);
    r.set_primary_key(["nationkey"]);
    r.add_foreign_key(["regionkey"], "Region", ["regionkey"]);
    rels.push(r);

    let mut r = RelationSchema::new("Region");
    r.add_attr("regionkey", AttrType::Int).add_attr("rname", AttrType::Text);
    r.set_primary_key(["regionkey"]);
    rels.push(r);

    rels
}

fn money(rng: &mut StdRng, lo: f64, hi: f64) -> f64 {
    let cents = rng.gen_range((lo * 100.0) as i64..(hi * 100.0) as i64);
    cents as f64 / 100.0
}

fn date(rng: &mut StdRng) -> Date {
    Date::new(rng.gen_range(1992..=1998), rng.gen_range(1..=12) as u8, rng.gen_range(1..=28) as u8)
}

/// Generates a database per the config. Panics if the config is too small
/// to hold the planted structure.
pub fn generate_tpch(cfg: &TpchConfig) -> Database {
    assert!(cfg.parts >= 40, "need at least 40 parts (28 are planted)");
    assert!(cfg.suppliers >= 40, "need at least 40 suppliers for the planted wiring");
    assert!(cfg.orders >= 300, "need at least 300 orders for planted lineitems");

    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut db = Database::new("tpch");
    for rel in tpch_schema() {
        db.add_relation(rel).expect("static dataset builder");
    }

    // --- Region & Nation --------------------------------------------------
    for (i, name) in words::REGIONS.iter().enumerate() {
        db.insert("Region", vec![Value::Int(i as i64), Value::str(*name)])
            .expect("static dataset builder");
    }
    for (i, name) in words::NATIONS.iter().enumerate() {
        db.insert(
            "Nation",
            vec![Value::Int(i as i64), Value::str(*name), Value::Int((i % 5) as i64)],
        )
        .expect("static dataset builder");
    }

    // --- Part -------------------------------------------------------------
    // partkey 1..=8: royal olive; 9..=21: yellow tomato; 22: chocolate;
    // 23..=25 pink rose; 26..=28 white rose; the rest are background noise.
    // The planted parts carry *identical* names — the paper's central
    // ambiguity: objects sharing an attribute value that SQAK merges and
    // the semantic engine distinguishes by object identifier.
    let mut part_names: Vec<String> = Vec::with_capacity(cfg.parts);
    for _ in 0..8 {
        part_names.push("royal olive".to_string());
    }
    for _ in 0..13 {
        part_names.push("yellow tomato".to_string());
    }
    part_names.push("Indian black chocolate".to_string());
    for _ in 0..3 {
        part_names.push("pink rose".to_string());
    }
    for _ in 0..3 {
        part_names.push("white rose".to_string());
    }
    while part_names.len() < cfg.parts {
        let name = format!(
            "{} {} {}",
            words::ADJECTIVES[rng.gen_range(0..words::ADJECTIVES.len())],
            words::COLORS[rng.gen_range(0..words::COLORS.len())],
            words::NOUNS[rng.gen_range(0..words::NOUNS.len())],
        );
        part_names.push(name);
    }
    for (i, name) in part_names.iter().enumerate() {
        let partkey = (i + 1) as i64;
        db.insert(
            "Part",
            vec![
                Value::Int(partkey),
                Value::str(name.clone()),
                Value::str(words::PART_TYPES[rng.gen_range(0..words::PART_TYPES.len())]),
                Value::Int(rng.gen_range(1..=50)),
                Value::Float(money(&mut rng, 900.0, 2000.0)),
            ],
        )
        .expect("static dataset builder");
    }

    // --- Supplier -----------------------------------------------------------
    // Suppliers 31..=34 supply the yellow tomatoes; supplier 31 carries the
    // planted maximum balance 9844.00, everyone else stays below it.
    for i in 1..=cfg.suppliers {
        let acctbal =
            if i == 31 { YELLOW_TOMATO_MAX_ACCTBAL } else { money(&mut rng, 100.0, 9500.0) };
        // dbgen-style names: every sname literally contains "Supplier",
        // which is how SQAK's value matching still reaches supplier data
        // on the denormalized TPCH' schema (Table 8).
        let name = format!("Supplier#{i:09}");
        db.insert(
            "Supplier",
            vec![
                Value::Int(i as i64),
                Value::str(name),
                Value::Int(rng.gen_range(0..25)),
                Value::Float(acctbal),
            ],
        )
        .expect("static dataset builder");
    }

    // --- Customer & Order ---------------------------------------------------
    for i in 1..=cfg.customers {
        let name = format!("Customer#{i:09}");
        db.insert(
            "Customer",
            vec![
                Value::Int(i as i64),
                Value::str(name),
                Value::Int(rng.gen_range(0..25)),
                Value::str(words::MKT_SEGMENTS[rng.gen_range(0..words::MKT_SEGMENTS.len())]),
            ],
        )
        .expect("static dataset builder");
    }
    for i in 1..=cfg.orders {
        db.insert(
            "Order",
            vec![
                Value::Int(i as i64),
                Value::Int(rng.gen_range(1..=cfg.customers) as i64),
                Value::Float(money(&mut rng, 1000.0, 300_000.0)),
                Value::Date(date(&mut rng)),
                Value::str(words::PRIORITIES[rng.gen_range(0..words::PRIORITIES.len())]),
            ],
        )
        .expect("static dataset builder");
    }

    // --- Lineitem ------------------------------------------------------------
    let mut used: HashSet<(i64, i64, i64)> = HashSet::new();
    let add_lineitem = |db: &mut Database,
                        used: &mut HashSet<(i64, i64, i64)>,
                        rng: &mut StdRng,
                        part: i64,
                        supp: i64,
                        order: i64|
     -> bool {
        if !used.insert((part, supp, order)) {
            return false;
        }
        db.insert(
            "Lineitem",
            vec![
                Value::Int(part),
                Value::Int(supp),
                Value::Int(order),
                Value::Int(rng.gen_range(1..=50)),
            ],
        )
        .expect("static dataset builder");
        true
    };

    // Distinct-order pools: a simple deterministic shuffle over orders.
    let mut order_pool: Vec<i64> = (1..=cfg.orders as i64).collect();
    // Fisher-Yates with the seeded RNG.
    for i in (1..order_pool.len()).rev() {
        let j = rng.gen_range(0..=i);
        order_pool.swap(i, j);
    }
    let mut pool_cursor = 0usize;
    let next_orders = |n: usize, pool_cursor: &mut usize| -> Vec<i64> {
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(order_pool[*pool_cursor % order_pool.len()]);
            *pool_cursor += 1;
        }
        out
    };

    // Royal olive parts (1..=8): each in its planted number of distinct
    // orders, one lineitem per order, suppliers rotating over 5..=20.
    for (idx, &count) in ROYAL_OLIVE_ORDER_COUNTS.iter().enumerate() {
        let part = (idx + 1) as i64;
        for (k, order) in next_orders(count, &mut pool_cursor).into_iter().enumerate() {
            let supp = (5 + (k % 16)) as i64;
            add_lineitem(&mut db, &mut used, &mut rng, part, supp, order);
        }
    }

    // Yellow tomato parts (9..=21): suppliers drawn from 31..=34; part 9
    // includes supplier 31 (the 9844.00 balance) so the global max is
    // planted.
    for part in 9..=21i64 {
        let n_supp = 2 + (part as usize % 3);
        for (k, order) in next_orders(n_supp, &mut pool_cursor).into_iter().enumerate() {
            let supp = (31 + ((part as usize + k) % 4)) as i64;
            add_lineitem(&mut db, &mut used, &mut rng, part, supp, order);
        }
    }

    // Indian black chocolate (22): 4 suppliers, 22 lineitems in distinct
    // orders — SQAK counts 22 suppliers, the semantic engine 4.
    {
        let supps: [i64; CHOCOLATE_SUPPLIERS] = [1, 2, 3, 4];
        for (k, order) in next_orders(CHOCOLATE_LINEITEMS, &mut pool_cursor).into_iter().enumerate()
        {
            add_lineitem(&mut db, &mut used, &mut rng, 22, supps[k % supps.len()], order);
        }
    }

    // Pink/white rose pairs: pair i shares exactly supplier 10+i; each
    // part also has a private supplier so the shared one is not the only
    // supplier of either part.
    for i in 0..3i64 {
        let pink = 23 + i;
        let white = 26 + i;
        let shared = 10 + i;
        let orders = next_orders(4, &mut pool_cursor);
        add_lineitem(&mut db, &mut used, &mut rng, pink, shared, orders[0]);
        add_lineitem(&mut db, &mut used, &mut rng, white, shared, orders[1]);
        add_lineitem(&mut db, &mut used, &mut rng, pink, 20 + i, orders[2]);
        add_lineitem(&mut db, &mut used, &mut rng, white, 25 + i, orders[3]);
    }

    // Base workload: each supplier stocks `parts_per_supplier` background
    // parts; each (part, supplier) pair recurs in 1..=max_orders_per_pair
    // distinct orders (this recurrence is what SQAK's T6 trips over).
    for supp in 1..=cfg.suppliers as i64 {
        for _ in 0..cfg.parts_per_supplier {
            let part = rng.gen_range(29..=cfg.parts) as i64;
            let repeats = rng.gen_range(1..=cfg.max_orders_per_pair);
            for order in next_orders(repeats, &mut pool_cursor) {
                add_lineitem(&mut db, &mut used, &mut rng, part, supp, order);
            }
        }
    }

    db.validate().expect("generated TPC-H database is consistent");
    db
}

#[cfg(test)]
mod tests {
    use super::*;

    fn db() -> Database {
        generate_tpch(&TpchConfig::small())
    }

    #[test]
    fn deterministic_for_same_seed() {
        let a = generate_tpch(&TpchConfig::small());
        let b = generate_tpch(&TpchConfig::small());
        assert_eq!(a.total_rows(), b.total_rows());
        assert_eq!(a.table("Lineitem").unwrap().rows(), b.table("Lineitem").unwrap().rows());
    }

    #[test]
    fn different_seed_changes_data() {
        let a = generate_tpch(&TpchConfig::small());
        let mut cfg = TpchConfig::small();
        cfg.seed = 7;
        let b = generate_tpch(&cfg);
        assert_ne!(a.table("Order").unwrap().rows(), b.table("Order").unwrap().rows());
    }

    #[test]
    fn planted_royal_olive_structure() {
        let db = db();
        let parts = db.table("Part").unwrap();
        let olive: Vec<i64> = parts
            .rows()
            .iter()
            .filter(|r| r[1].contains_ci("royal olive"))
            .map(|r| match &r[0] {
                Value::Int(i) => *i,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(olive.len(), 8);

        // Count distinct orders per part from Lineitem.
        let li = db.table("Lineitem").unwrap();
        for (idx, part) in olive.iter().enumerate() {
            let mut orders: Vec<i64> = li
                .rows()
                .iter()
                .filter(|r| r[0] == Value::Int(*part))
                .map(|r| match &r[2] {
                    Value::Int(i) => *i,
                    _ => unreachable!(),
                })
                .collect();
            orders.sort_unstable();
            orders.dedup();
            assert_eq!(orders.len(), ROYAL_OLIVE_ORDER_COUNTS[idx], "part {part}");
        }
    }

    #[test]
    fn planted_chocolate_structure() {
        let db = db();
        let li = db.table("Lineitem").unwrap();
        let rows: Vec<_> = li.rows().iter().filter(|r| r[0] == Value::Int(22)).collect();
        assert_eq!(rows.len(), CHOCOLATE_LINEITEMS);
        let mut supps: Vec<&Value> = rows.iter().map(|r| &r[1]).collect();
        supps.sort();
        supps.dedup();
        assert_eq!(supps.len(), CHOCOLATE_SUPPLIERS);
    }

    #[test]
    fn planted_rose_pairs_share_one_supplier() {
        let db = db();
        let li = db.table("Lineitem").unwrap();
        let supps_of = |part: i64| -> HashSet<i64> {
            li.rows()
                .iter()
                .filter(|r| r[0] == Value::Int(part))
                .map(|r| match &r[1] {
                    Value::Int(i) => *i,
                    _ => unreachable!(),
                })
                .collect()
        };
        for i in 0..3i64 {
            let common: HashSet<i64> =
                supps_of(23 + i).intersection(&supps_of(26 + i)).copied().collect();
            assert_eq!(common.len(), 1, "pair {i}");
        }
        let cross: HashSet<i64> = supps_of(23).intersection(&supps_of(27)).copied().collect();
        assert!(cross.is_empty(), "no cross-pair common supplier");
    }

    #[test]
    fn tomato_max_acctbal_planted() {
        let db = db();
        let suppliers = db.table("Supplier").unwrap();
        let max = suppliers.rows().iter().filter_map(|r| r[3].as_f64()).fold(f64::MIN, f64::max);
        assert_eq!(max, YELLOW_TOMATO_MAX_ACCTBAL);
    }

    #[test]
    fn referential_integrity_holds() {
        db().validate().unwrap();
    }

    #[test]
    #[should_panic(expected = "at least 40 parts")]
    fn too_small_config_panics() {
        let mut cfg = TpchConfig::small();
        cfg.parts = 10;
        generate_tpch(&cfg);
    }
}
