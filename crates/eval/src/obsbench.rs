//! Metrics-overhead benchmark: answers the TPC-H' aggregate workload
//! end to end twice per repetition — once with the always-on metrics
//! registry disabled, once enabled — and reports the per-query and
//! median overhead of observation, serialized as `BENCH_obs.json`.
//!
//! The always-on subsystem's contract is twofold: enabled recording
//! costs < 3% of median end-to-end latency on a real workload, and the
//! disabled path performs **zero** allocations. The first is measured
//! by interleaved A/B repetitions (disabled and enabled runs alternate
//! within each repetition, so clock drift and cache warming hit both
//! arms equally). The second is pinned by an allocation probe: the
//! `repro` binary installs a counting global allocator that bumps
//! [`PROBE_ALLOCATIONS`] while [`PROBE_ACTIVE`] is set; a tight loop of
//! metric-handle calls with the registry disabled must leave the count
//! at zero. When the harness runs without that allocator (e.g. from a
//! library test), the probe detects it via a sentinel allocation and
//! reports the check as skipped rather than trivially passing.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Instant;

use aqks_core::Engine;
use aqks_obs::metrics::{self, Counter, Histogram, LabeledCounter, Unit};

use crate::timing::TimingSummary;
use crate::workload::tpch_queries;

/// Arms the allocation probe: while set, the binary's counting global
/// allocator bumps [`PROBE_ALLOCATIONS`] on every allocation.
pub static PROBE_ACTIVE: AtomicBool = AtomicBool::new(false);

/// Allocations observed while [`PROBE_ACTIVE`] was set.
pub static PROBE_ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

/// Hook for the binary's `#[global_allocator]`: call on every `alloc`.
/// One relaxed load when the probe is disarmed.
#[inline]
pub fn probe_alloc() {
    if PROBE_ACTIVE.load(Ordering::Relaxed) {
        PROBE_ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
    }
}

/// Overhead measurement of one workload query.
#[derive(Debug, Clone)]
pub struct QueryObsBench {
    /// Paper query id (T1…T8).
    pub id: &'static str,
    /// End-to-end `answer` wall time with metrics disabled.
    pub disabled: TimingSummary,
    /// End-to-end `answer` wall time with metrics enabled.
    pub enabled: TimingSummary,
    /// Median-over-median overhead of enabling metrics, percent.
    pub overhead_pct: f64,
    /// Failure message when the query could not be answered.
    pub error: Option<String>,
}

/// The full overhead benchmark.
#[derive(Debug, Clone)]
pub struct ObsBench {
    /// Per-query measurements.
    pub rows: Vec<QueryObsBench>,
    /// Repetitions per arm per query.
    pub reps: usize,
    /// Median across queries of each query's `overhead_pct`.
    pub median_overhead_pct: f64,
    /// Allocations observed on the disabled recording path — must be
    /// `Some(0)`; `None` means the counting allocator is not installed
    /// (library-test context) and the check could not run.
    pub disabled_path_allocations: Option<u64>,
    /// Flight-recorder entries retained after the enabled runs.
    pub flight_retained: usize,
}

static PROBE_COUNTER: Counter = Counter::new("obsbench_probe_counter");
static PROBE_LATENCY: Histogram = Histogram::new("obsbench_probe_latency_ns", Unit::Nanos);
static PROBE_SITES: LabeledCounter = LabeledCounter::new("obsbench_probe_sites", "site");

/// Measures allocations across 10k disabled-path handle recordings.
/// Returns `None` when no counting allocator is installed.
pub fn disabled_path_allocations() -> Option<u64> {
    // Warm: register every probe cell while enabled, so the measured
    // loop exercises the steady-state (not first-use) path.
    let was_enabled = metrics::enabled();
    metrics::set_enabled(true);
    PROBE_COUNTER.add(1);
    PROBE_LATENCY.observe(1);
    PROBE_SITES.add("ops.Scan", 1);

    // Sentinel: prove the probe is live before trusting a zero count.
    PROBE_ALLOCATIONS.store(0, Ordering::SeqCst);
    PROBE_ACTIVE.store(true, Ordering::SeqCst);
    let sentinel = std::hint::black_box(vec![0u8; 64]);
    drop(sentinel);
    let installed = PROBE_ALLOCATIONS.load(Ordering::SeqCst) > 0;
    if !installed {
        PROBE_ACTIVE.store(false, Ordering::SeqCst);
        metrics::set_enabled(was_enabled);
        return None;
    }

    metrics::set_enabled(false);
    PROBE_ALLOCATIONS.store(0, Ordering::SeqCst);
    for i in 0..10_000u64 {
        PROBE_COUNTER.add(1);
        PROBE_LATENCY.observe(i * 17);
        PROBE_SITES.add("ops.Scan", 1);
    }
    let allocs = PROBE_ALLOCATIONS.load(Ordering::SeqCst);
    PROBE_ACTIVE.store(false, Ordering::SeqCst);
    metrics::set_enabled(was_enabled);
    Some(allocs)
}

/// Runs the overhead benchmark: the TPC-H' aggregate workload, `reps`
/// interleaved repetitions per arm per query. Leaves the registry
/// enabled (its default) on return.
pub fn run_obs_bench(reps: usize) -> ObsBench {
    let reps = reps.max(1);
    let disabled_path_allocations = disabled_path_allocations();
    let engine = match Engine::new(crate::execbench::sweep_database()) {
        Ok(e) => e,
        Err(e) => {
            let rows = tpch_queries()
                .iter()
                .map(|q| QueryObsBench {
                    id: q.id,
                    disabled: TimingSummary::zero(),
                    enabled: TimingSummary::zero(),
                    overhead_pct: 0.0,
                    error: Some(format!("engine: {e}")),
                })
                .collect();
            return ObsBench {
                rows,
                reps,
                median_overhead_pct: 0.0,
                disabled_path_allocations,
                flight_retained: 0,
            };
        }
    };
    let rows: Vec<QueryObsBench> = tpch_queries()
        .into_iter()
        .map(|q| {
            let fail = |msg: String| QueryObsBench {
                id: q.id,
                disabled: TimingSummary::zero(),
                enabled: TimingSummary::zero(),
                overhead_pct: 0.0,
                error: Some(msg),
            };
            // Warm both arms once: first-touch costs (interning, cell
            // registration, plan caches) stay out of the timed reps.
            for on in [false, true] {
                metrics::set_enabled(on);
                if let Err(e) = engine.answer(q.text, 1) {
                    metrics::set_enabled(true);
                    return fail(format!("answer: {e}"));
                }
            }
            let mut off_us = Vec::with_capacity(reps);
            let mut on_us = Vec::with_capacity(reps);
            for _ in 0..reps {
                // Interleaved A/B: drift and thermal effects hit both
                // arms symmetrically.
                metrics::set_enabled(false);
                let t = Instant::now();
                if let Err(e) = engine.answer(q.text, 1) {
                    metrics::set_enabled(true);
                    return fail(format!("answer (disabled): {e}"));
                }
                off_us.push(t.elapsed().as_secs_f64() * 1e6);
                metrics::set_enabled(true);
                let t = Instant::now();
                if let Err(e) = engine.answer(q.text, 1) {
                    return fail(format!("answer (enabled): {e}"));
                }
                on_us.push(t.elapsed().as_secs_f64() * 1e6);
            }
            let disabled = TimingSummary::from_samples(&off_us);
            let enabled = TimingSummary::from_samples(&on_us);
            let overhead_pct = if disabled.median_us > 0.0 {
                (enabled.median_us - disabled.median_us) / disabled.median_us * 100.0
            } else {
                0.0
            };
            QueryObsBench { id: q.id, disabled, enabled, overhead_pct, error: None }
        })
        .collect();
    metrics::set_enabled(true);
    let mut overheads: Vec<f64> =
        rows.iter().filter(|r| r.error.is_none()).map(|r| r.overhead_pct).collect();
    overheads.sort_by(|a, b| a.partial_cmp(b).expect("overheads are finite"));
    let median_overhead_pct =
        if overheads.is_empty() { 0.0 } else { overheads[overheads.len() / 2] };
    ObsBench {
        rows,
        reps,
        median_overhead_pct,
        disabled_path_allocations,
        flight_retained: aqks_obs::flight::global().retained(),
    }
}

/// Serializes the benchmark as the `BENCH_obs.json` document.
pub fn render_json(bench: &ObsBench) -> String {
    let mut s = String::from("{\n");
    s.push_str(&format!("  \"reps\": {},\n", bench.reps));
    s.push_str(&format!("  \"median_overhead_pct\": {:.2},\n", bench.median_overhead_pct));
    match bench.disabled_path_allocations {
        Some(n) => s.push_str(&format!("  \"disabled_path_allocations\": {n},\n")),
        None => s.push_str("  \"disabled_path_allocations\": null,\n"),
    }
    s.push_str(&format!("  \"flight_retained\": {},\n", bench.flight_retained));
    s.push_str("  \"queries\": [\n");
    for (i, r) in bench.rows.iter().enumerate() {
        s.push_str("    {");
        s.push_str(&format!("\"id\": \"{}\", ", r.id));
        match &r.error {
            Some(e) => s.push_str(&format!("\"error\": \"{}\"", crate::execbench::json_escape(e))),
            None => {
                s.push_str(&format!("\"disabled_us\": {:.1}, ", r.disabled.median_us));
                s.push_str(&format!("\"enabled_us\": {:.1}, ", r.enabled.median_us));
                s.push_str(&format!("\"overhead_pct\": {:.2}", r.overhead_pct));
            }
        }
        s.push_str(&format!("}}{}\n", if i + 1 < bench.rows.len() { "," } else { "" }));
    }
    s.push_str("  ]\n}\n");
    s
}
