//! Plan-corruption seeding for verifier tests.
//!
//! Each [`Mutation`] applies one realistic planner-bug shape to a copy
//! of a plan — the verifier must reject every applicable mutation with
//! the matching diagnostic kind. This module is a test harness, not an
//! execution feature; it lives in the library (rather than under
//! `#[cfg(test)]`) so downstream crates' property tests can seed the
//! same corruptions.

use aqks_sqlgen::{PlanNode, PlanOp};

/// A seedable plan corruption.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mutation {
    /// Re-points one hash-join key at a neighboring column, so the join
    /// pairs columns the interpretation never related.
    SwapJoinKeys,
    /// Splices the first Distinct operator out of the tree.
    DropDistinct,
    /// Flips a hash join's build side against the estimates.
    FlipBuildSide,
    /// Replaces a projected column index with one past the input arity
    /// (a stale index surviving a layout change).
    StaleColumnIndex,
}

impl Mutation {
    /// All mutation kinds, in a stable order.
    pub const ALL: [Mutation; 4] = [
        Mutation::SwapJoinKeys,
        Mutation::DropDistinct,
        Mutation::FlipBuildSide,
        Mutation::StaleColumnIndex,
    ];
}

/// Applies `m` to a copy of `plan`. Returns `None` when the plan has no
/// applicable site (e.g. `DropDistinct` on a plan without Distinct).
pub fn apply(plan: &PlanNode, m: Mutation) -> Option<PlanNode> {
    let mut out = plan.clone();
    let hit = match m {
        Mutation::SwapJoinKeys => swap_join_keys(&mut out),
        Mutation::DropDistinct => drop_distinct(&mut out),
        Mutation::FlipBuildSide => flip_build_side(&mut out),
        Mutation::StaleColumnIndex => stale_column_index(&mut out),
    };
    hit.then_some(out)
}

/// Every applicable mutation of `plan`, paired with its kind.
pub fn all(plan: &PlanNode) -> Vec<(Mutation, PlanNode)> {
    Mutation::ALL.iter().filter_map(|&m| apply(plan, m).map(|p| (m, p))).collect()
}

fn swap_join_keys(node: &mut PlanNode) -> bool {
    if let PlanOp::HashJoin { left_keys, right_keys, .. } = &mut node.op {
        // Rotate one key within its side so the pair no longer lines up;
        // a single-column side falls back to an out-of-range index.
        let right_arity = node.children[1].cols.len();
        let left_arity = node.children[0].cols.len();
        if right_arity > 1 {
            right_keys[0] = (right_keys[0] + 1) % right_arity;
        } else if left_arity > 1 {
            left_keys[0] = (left_keys[0] + 1) % left_arity;
        } else {
            right_keys[0] = right_arity;
        }
        return true;
    }
    node.children.iter_mut().any(swap_join_keys)
}

fn drop_distinct(node: &mut PlanNode) -> bool {
    if matches!(node.op, PlanOp::Distinct) {
        let child = node.children.remove(0);
        *node = child;
        return true;
    }
    node.children.iter_mut().any(drop_distinct)
}

fn flip_build_side(node: &mut PlanNode) -> bool {
    if let PlanOp::HashJoin { build_left, .. } = &mut node.op {
        // Only a decisive flip contradicts the planner's policy: with
        // equal estimates either side verifies.
        if node.children[0].est_rows != node.children[1].est_rows {
            *build_left = !*build_left;
            return true;
        }
    }
    node.children.iter_mut().any(flip_build_side)
}

fn stale_column_index(node: &mut PlanNode) -> bool {
    let arity = node.children.first().map_or(0, |c| c.cols.len());
    match &mut node.op {
        PlanOp::Project { cols, .. } if !cols.is_empty() => {
            cols[0] = arity;
            true
        }
        PlanOp::HashAggregate { group, items, .. } => {
            if let Some(g) = group.first_mut() {
                *g = arity;
            } else if let Some(item) = items.first_mut() {
                match item {
                    aqks_sqlgen::PhysAggItem::Col(i) => *i = arity,
                    aqks_sqlgen::PhysAggItem::Agg { arg, .. } => *arg = arity,
                }
            } else {
                return false;
            }
            true
        }
        _ => node.children.iter_mut().any(stale_column_index),
    }
}
