//! The end-to-end engine (Algorithm 2).
//!
//! [`Engine::new`] inspects the database: if every relation is in 3NF
//! (under its declared FDs) the ORM schema graph is built directly on the
//! schema; otherwise Algorithm 1 builds the normalized view `D'` first
//! and everything — matching, pattern generation, translation — runs over
//! `D'`, with the final SQL mapped back to the original relations and
//! simplified by the Section 4.1 rewrite rules.
//!
//! [`Engine::generate`] produces the ranked SQL statements (what
//! Figure 11 times); [`Engine::answer`] additionally executes them.

use aqks_analyze::{Analyzer, Report};
use aqks_obs::{PipelineTrace, Recorder};
use aqks_orm::OrmGraph;
use aqks_relational::{Database, DatabaseSchema, NormalizedView};
use aqks_sqlgen::{ExecStats, ResultTable, SelectStatement};

use crate::annotate::disambiguate;
use crate::error::CoreError;
use crate::matching::{Matcher, TermMatch, TermRole};
use crate::pattern::{generate_patterns, QueryPattern};
use crate::query::{KeywordQuery, Operator, Term};
use crate::rank::rank_patterns;
use crate::translate::{translate_ex, TranslateOptions};
use crate::unnormalized::{rewrite, RewriteOptions};

/// Engine configuration.
#[derive(Debug, Clone, Default)]
pub struct EngineOptions {
    /// Translation rules (ablation switches).
    pub translate: TranslateOptions,
    /// Rewrite rules for unnormalized databases (ablation switches).
    pub rewrite: RewriteOptions,
    /// Skip the Section 4.1 rewriting entirely when true.
    pub skip_rewrites: bool,
    /// Run instance-level FD discovery before deciding whether the
    /// database is normalized — for unnormalized databases whose schema
    /// declares no FDs (the paper assumes FDs are given; a deployed
    /// system has to mine them).
    pub discover_fds: bool,
}

/// A generated (not yet executed) interpretation.
#[derive(Debug, Clone)]
pub struct GeneratedSql {
    /// The annotated query pattern.
    pub pattern: QueryPattern,
    /// The SQL statement.
    pub sql: SelectStatement,
    /// Rendered SQL text.
    pub sql_text: String,
    /// The pattern's rank key (smaller ranks first); interpretations are
    /// returned in rank order.
    pub score: crate::rank::RankKey,
    /// Findings of the static analyzer (`aqks-analyze`) on `sql`. Debug
    /// builds refuse to return statements with error-severity findings;
    /// release builds record them here.
    pub diagnostics: Report,
}

/// An executed interpretation.
#[derive(Debug, Clone)]
pub struct Interpretation {
    /// Human-readable pattern description.
    pub pattern_description: String,
    /// The SQL statement.
    pub sql: SelectStatement,
    /// Rendered SQL text.
    pub sql_text: String,
    /// The answer rows (deterministically sorted).
    pub result: ResultTable,
    /// Per-operator execution metrics of the physical plan that produced
    /// [`Interpretation::result`] (see [`aqks_sqlgen::render_plan_with_stats`]).
    pub stats: ExecStats,
}

/// How one query term matched the database (see [`Engine::explain`]).
#[derive(Debug, Clone)]
pub struct TermReport {
    /// The term's text (operators in their keyword form).
    pub term: String,
    /// True for aggregate/GROUPBY operators.
    pub is_operator: bool,
    /// Human-readable descriptions of each match.
    pub matches: Vec<String>,
}

/// One ranked interpretation in an [`Explanation`].
#[derive(Debug, Clone)]
pub struct PatternReport {
    /// One-line pattern description.
    pub description: String,
    /// Graphviz rendering of the pattern.
    pub dot: String,
    /// The rank key (smaller ranks first).
    pub score: crate::rank::RankKey,
}

/// The interpretation trace of a query (see [`Engine::explain`]).
#[derive(Debug, Clone)]
pub struct Explanation {
    /// Per-term match reports, in query order.
    pub terms: Vec<TermReport>,
    /// All generated patterns, ranked best-first.
    pub patterns: Vec<PatternReport>,
}

/// The semantic keyword-search engine.
pub struct Engine {
    db: Database,
    original_schema: DatabaseSchema,
    namespace: DatabaseSchema,
    graph: OrmGraph,
    matcher: Matcher,
    view: Option<NormalizedView>,
    options: EngineOptions,
    /// Pipeline tracing sink; disabled by default, so every span below
    /// costs one atomic load until someone asks for a trace.
    recorder: Recorder,
}

impl Engine {
    /// Builds an engine with default options.
    pub fn new(db: Database) -> Result<Engine, CoreError> {
        Engine::with_options(db, EngineOptions::default())
    }

    /// Builds an engine with explicit options.
    pub fn with_options(mut db: Database, options: EngineOptions) -> Result<Engine, CoreError> {
        if options.discover_fds {
            db.discover_and_declare_fds(&aqks_relational::DiscoveryOptions::default());
        }
        let schema = db.schema();
        if NormalizedView::is_normalized(&schema) {
            let graph = OrmGraph::build(&schema)?;
            let matcher = Matcher::normalized(&db);
            Ok(Engine {
                db,
                original_schema: schema.clone(),
                namespace: schema,
                graph,
                matcher,
                view: None,
                options,
                recorder: Recorder::disabled(),
            })
        } else {
            let view = NormalizedView::build(&schema);
            let namespace = view.schema();
            let graph = OrmGraph::build(&namespace)?;
            let matcher = Matcher::unnormalized(&db, view.clone());
            Ok(Engine {
                db,
                original_schema: schema,
                namespace,
                graph,
                matcher,
                view: Some(view),
                options,
                recorder: Recorder::disabled(),
            })
        }
    }

    /// True when the database required a normalized view (Section 4).
    pub fn is_unnormalized(&self) -> bool {
        self.view.is_some()
    }

    /// The ORM schema graph the engine works over.
    pub fn orm_graph(&self) -> &OrmGraph {
        &self.graph
    }

    /// The pattern-namespace schema (`D` or `D'`).
    pub fn namespace(&self) -> &DatabaseSchema {
        &self.namespace
    }

    /// The underlying database.
    pub fn database(&self) -> &Database {
        &self.db
    }

    /// The engine's trace recorder. Disabled (and effectively free) by
    /// default; enable it around a call — or use
    /// [`Engine::answer_traced`] / [`Engine::explain_traced`] — to
    /// collect a [`PipelineTrace`].
    pub fn recorder(&self) -> &Recorder {
        &self.recorder
    }

    /// Parses, matches, generates, ranks, and translates — everything but
    /// execution. This is the work Figure 11 measures.
    pub fn generate(&self, query: &str, k: usize) -> Result<Vec<GeneratedSql>, CoreError> {
        let query = {
            let _s = self.recorder.span("parse");
            KeywordQuery::parse(query)?
        };
        let matches = {
            let s = self.recorder.span("match");
            let matches = self.term_matches(&query);
            s.add("matches.total", matches.iter().map(Vec::len).sum::<usize>() as u64);
            matches
        };
        let patterns = {
            let s = self.recorder.span("pattern");
            let patterns = generate_patterns(&query, &matches, &self.graph, &self.namespace)?;
            s.add("patterns.generated", patterns.len() as u64);
            patterns
        };
        let patterns = {
            let _s = self.recorder.span("annotate");
            disambiguate(patterns, &self.namespace)
        };
        let patterns = {
            let s = self.recorder.span("rank");
            let ranked = rank_patterns(patterns);
            s.add("patterns.ranked", ranked.len() as u64);
            ranked
        };

        // Translate all top-k patterns, then analyze all statements, so a
        // trace shows exactly one `translate` and one `analyze` phase.
        let translated = {
            let s = self.recorder.span("translate");
            let mut translated = Vec::new();
            for p in patterns.into_iter().take(k) {
                let t = translate_ex(
                    &p,
                    &self.graph,
                    &self.namespace,
                    self.view.as_ref(),
                    &self.options.translate,
                )?;
                let sql = if self.view.is_some() && !self.options.skip_rewrites {
                    rewrite(&t.stmt, &t.derived_keys, &self.db.schema(), &self.options.rewrite)
                } else {
                    t.stmt
                };
                let sql_text = sql.to_string();
                translated.push((p, sql, sql_text));
            }
            s.add("patterns.translated", translated.len() as u64);
            translated
        };

        let _s = self.recorder.span("analyze");
        let mut out = Vec::with_capacity(translated.len());
        for (p, sql, sql_text) in translated {
            let diagnostics = self.analyze(&sql);
            if cfg!(debug_assertions) && diagnostics.has_errors() {
                return Err(CoreError::Analysis(format!(
                    "{}\n{sql_text}",
                    diagnostics.render(&sql).trim_end()
                )));
            }
            let score = crate::rank::rank_key(&p);
            out.push(GeneratedSql { pattern: p, sql, sql_text, score, diagnostics });
        }
        Ok(out)
    }

    /// Statically analyzes a generated statement. Base relations in the
    /// final SQL always come from the original schema — normalized-view
    /// relations only ever appear as derived projections *over* original
    /// relations — so the analysis resolves against it. The ORM graph
    /// describes the namespace, so pass P3 consults it only when the two
    /// schemas coincide (no view).
    fn analyze(&self, sql: &SelectStatement) -> Report {
        let analyzer = Analyzer::new(&self.original_schema);
        if self.view.is_none() {
            analyzer.with_graph(&self.graph).analyze(sql)
        } else {
            analyzer.analyze(sql)
        }
    }

    /// Full Algorithm 2: generate the top-`k` interpretations and execute
    /// them against the database.
    pub fn answer(&self, query: &str, k: usize) -> Result<Vec<Interpretation>, CoreError> {
        let _root = self.recorder.span("answer");
        let generated = self.generate(query, k)?;
        let mut out = Vec::with_capacity(generated.len());
        for g in generated {
            let plan = {
                let _s = self.recorder.span("plan");
                aqks_sqlgen::plan(&g.sql, &self.db).map_err(CoreError::from)?
            };
            let (result, stats) = {
                let s = self.recorder.span("exec");
                let (result, stats) = aqks_sqlgen::run_plan(&plan, &self.db)?;
                s.add("exec.rows_out", result.row_count() as u64);
                (result, stats)
            };
            out.push(Interpretation {
                pattern_description: g.pattern.describe(),
                sql: g.sql,
                sql_text: g.sql_text,
                result: result.sorted(),
                stats,
            });
        }
        Ok(out)
    }

    /// [`Engine::answer`] with tracing: enables the recorder for the
    /// duration of the call and returns the collected [`PipelineTrace`]
    /// alongside the interpretations.
    pub fn answer_traced(
        &self,
        query: &str,
        k: usize,
    ) -> Result<(Vec<Interpretation>, PipelineTrace), CoreError> {
        self.traced(|| self.answer(query, k))
    }

    /// [`Engine::explain`] with tracing (see [`Engine::answer_traced`]).
    pub fn explain_traced(&self, query: &str) -> Result<(Explanation, PipelineTrace), CoreError> {
        self.traced(|| self.explain(query))
    }

    /// Runs `f` with the recorder enabled and snapshots the trace.
    /// Restores the previous enabled state afterwards, and drops
    /// anything recorded before the call so the trace covers `f` only.
    fn traced<T>(
        &self,
        f: impl FnOnce() -> Result<T, CoreError>,
    ) -> Result<(T, PipelineTrace), CoreError> {
        let was_enabled = self.recorder.is_enabled();
        if !was_enabled {
            self.recorder.enable();
        }
        let _ = self.recorder.take(); // discard stale spans
        let result = f();
        let trace = self.recorder.take();
        if !was_enabled {
            self.recorder.disable();
        }
        Ok((result?, trace))
    }

    /// Explains how a query is interpreted: each term's matches and the
    /// ranked patterns with their scores — the trace behind
    /// [`Engine::generate`], for debugging and the CLI's `--explain`.
    pub fn explain(&self, query: &str) -> Result<Explanation, CoreError> {
        let _root = self.recorder.span("explain");
        let parsed = {
            let _s = self.recorder.span("parse");
            KeywordQuery::parse(query)?
        };
        let matches = {
            let s = self.recorder.span("match");
            let matches = self.term_matches(&parsed);
            s.add("matches.total", matches.iter().map(Vec::len).sum::<usize>() as u64);
            matches
        };
        let term_reports = parsed
            .terms
            .iter()
            .zip(&matches)
            .map(|(t, ms)| {
                let text = match t {
                    Term::Basic(s) => s.clone(),
                    Term::Op(Operator::GroupBy) => "GROUPBY".to_string(),
                    Term::Op(Operator::Agg(f)) => f.keyword().to_string(),
                };
                let descriptions = ms
                    .iter()
                    .map(|m| match m {
                        TermMatch::RelationName { relation } => {
                            format!("relation `{relation}`")
                        }
                        TermMatch::AttributeName { relation, attribute } => {
                            format!("attribute `{relation}.{attribute}`")
                        }
                        TermMatch::Value { relation, attribute, tuple_count } => {
                            format!("value of `{relation}.{attribute}` ({tuple_count} object(s))")
                        }
                    })
                    .collect();
                TermReport {
                    term: text,
                    is_operator: matches!(t, Term::Op(_)),
                    matches: descriptions,
                }
            })
            .collect();

        let patterns = {
            let s = self.recorder.span("pattern");
            let patterns = generate_patterns(&parsed, &matches, &self.graph, &self.namespace)?;
            s.add("patterns.generated", patterns.len() as u64);
            patterns
        };
        let annotated = {
            let _s = self.recorder.span("annotate");
            disambiguate(patterns, &self.namespace)
        };
        let ranked = {
            let _s = self.recorder.span("rank");
            rank_patterns(annotated)
        };
        let pattern_reports = ranked
            .iter()
            .map(|p| PatternReport {
                description: p.describe(),
                dot: p.to_dot(),
                score: crate::rank::rank_key(p),
            })
            .collect();
        Ok(Explanation { terms: term_reports, patterns: pattern_reports })
    }

    fn term_matches(&self, query: &KeywordQuery) -> Vec<Vec<TermMatch>> {
        query
            .terms
            .iter()
            .enumerate()
            .map(|(i, t)| match t {
                Term::Basic(text) => {
                    let role = if query.is_operand(i) {
                        match query.terms[i - 1] {
                            Term::Op(Operator::Agg(aqks_sqlgen::AggFunc::Count))
                            | Term::Op(Operator::GroupBy) => TermRole::CountGroupByOperand,
                            Term::Op(Operator::Agg(_)) => TermRole::AggOperand,
                            Term::Basic(_) => TermRole::Free,
                        }
                    } else {
                        TermRole::Free
                    };
                    self.matcher.matches(&self.db, text, role)
                }
                Term::Op(_) => Vec::new(),
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aqks_datasets::university;
    use aqks_relational::Value;

    #[test]
    fn q1_end_to_end() {
        let engine = Engine::new(university::normalized()).unwrap();
        let answers = engine.answer("Green SUM Credit", 1).unwrap();
        let r = &answers[0].result;
        assert_eq!(r.len(), 2);
        assert_eq!(r.rows[0].last().unwrap(), &Value::Float(5.0));
        assert_eq!(r.rows[1].last().unwrap(), &Value::Float(8.0));
    }

    #[test]
    fn q2_end_to_end() {
        let engine = Engine::new(university::normalized()).unwrap();
        let answers = engine.answer("Java SUM Price", 3).unwrap();
        let textbook = answers
            .iter()
            .find(|a| a.result.column_index("sumPrice").is_some())
            .expect("textbook interpretation");
        assert_eq!(textbook.result.rows[0].last().unwrap(), &Value::Int(25));
    }

    /// Q3 on Figure 2: the unnormalized engine counts 1 department in
    /// Engineering (SQAK's join over duplicated Lecturer rows says 2).
    #[test]
    fn q3_unnormalized_fig2() {
        let engine = Engine::new(university::unnormalized_fig2()).unwrap();
        assert!(engine.is_unnormalized());
        let answers = engine.answer("Engineering COUNT Department", 1).unwrap();
        let r = &answers[0].result;
        assert_eq!(r.rows[0].last().unwrap(), &Value::Int(1), "{}\n{r}", answers[0].sql_text);
    }

    /// Example 9/10 end to end on the Figure-8 database.
    #[test]
    fn fig8_green_george_count_code() {
        let engine = Engine::new(university::enrolment_fig8()).unwrap();
        assert!(engine.is_unnormalized());
        let answers = engine.answer("Green George COUNT Code", 1).unwrap();
        let r = &answers[0].result;
        assert_eq!(r.len(), 2, "{}\n{r}", answers[0].sql_text);
        assert_eq!(r.rows[0].last().unwrap(), &Value::Int(1));
        assert_eq!(r.rows[1].last().unwrap(), &Value::Int(2));
        // The rewritten SQL runs on the original Enrolment relation.
        assert!(answers[0].sql_text.contains("Enrolment"));
    }

    /// FD discovery substitutes for declared FDs: an Enrolment database
    /// with *no* declared dependencies still gets decomposed, and every
    /// discovered dependency holds on the instance, so the answers match
    /// the declared-FD engine.
    #[test]
    fn discovery_substitutes_for_declared_fds() {
        let declared = Engine::new(university::enrolment_fig8()).unwrap();

        let mut undeclared = university::enrolment_fig8();
        // Strip the declared FDs (and naming hints) from the schema.
        let mut bare = aqks_relational::Database::new("fig8-bare");
        let mut schema = undeclared.table("Enrolment").unwrap().schema.clone();
        schema.extra_fds.clear();
        schema.entity_names.clear();
        bare.add_relation(schema).unwrap();
        for row in undeclared.table("Enrolment").unwrap().rows() {
            bare.insert("Enrolment", row.clone()).unwrap();
        }
        undeclared = bare;

        // Without discovery the engine treats the relation as normalized.
        let naive = Engine::new(undeclared.clone()).unwrap();
        assert!(!naive.is_unnormalized());

        let discovering = Engine::with_options(
            undeclared,
            EngineOptions { discover_fds: true, ..Default::default() },
        )
        .unwrap();
        assert!(discovering.is_unnormalized());

        let a = &declared.answer("Green George COUNT Code", 1).unwrap()[0];
        let b = &discovering.answer("Green George COUNT Code", 1).unwrap()[0];
        let left: Vec<&Value> = a.result.rows.iter().map(|r| r.last().unwrap()).collect();
        let right: Vec<&Value> = b.result.rows.iter().map(|r| r.last().unwrap()).collect();
        assert_eq!(left, right, "{}\nvs\n{}", a.sql_text, b.sql_text);
    }

    #[test]
    fn nonexistent_term_errors() {
        let engine = Engine::new(university::normalized()).unwrap();
        assert!(matches!(engine.answer("zebra COUNT Code", 1), Err(CoreError::NoMatch(_))));
    }

    #[test]
    fn explain_reports_matches_and_patterns() {
        let engine = Engine::new(university::normalized()).unwrap();
        let ex = engine.explain("Green SUM Credit").unwrap();
        assert_eq!(ex.terms.len(), 3);
        assert!(ex.terms[0].matches[0].contains("Student.Sname"), "{:?}", ex.terms);
        assert!(ex.terms[1].is_operator);
        assert!(ex.patterns.len() >= 2, "merged + per-Green");
        // Ranked: scores are non-decreasing.
        for w in ex.patterns.windows(2) {
            assert!(w[0].score <= w[1].score);
        }
        assert!(ex.patterns[0].dot.starts_with("graph pattern {"));
    }

    #[test]
    fn answer_carries_execution_stats() {
        let engine = Engine::new(university::normalized()).unwrap();
        let answers = engine.answer("Green SUM Credit", 1).unwrap();
        let s = &answers[0].stats;
        assert!(!s.ops.is_empty());
        assert!(s.ops.iter().any(|m| m.rows_out > 0), "{s:?}");
        // The plan and the stats vector index the same node ids.
        let plan = aqks_sqlgen::plan(&answers[0].sql, engine.database()).unwrap();
        assert_eq!(s.ops.len(), plan.max_id() + 1);
    }

    #[test]
    fn generate_does_not_execute() {
        let engine = Engine::new(university::normalized()).unwrap();
        let gen = engine.generate("COUNT Lecturer GROUPBY Course", 2).unwrap();
        assert!(!gen.is_empty());
        assert!(gen[0].sql_text.contains("COUNT"));
    }

    /// Every pipeline phase appears exactly once under the `answer` root
    /// (k=1), operator spans graft under `exec`, analyzer pass spans
    /// under `analyze`, and index counters flow up via the ambient stack.
    #[test]
    fn answer_traced_covers_every_phase_once() {
        let engine = Engine::new(university::normalized()).unwrap();
        let (answers, trace) = engine.answer_traced("Green SUM Credit", 1).unwrap();
        assert_eq!(answers.len(), 1);
        assert_eq!(trace.roots.len(), 1, "{trace:?}");
        let root = &trace.roots[0];
        assert_eq!(root.name, "answer");
        for phase in [
            "parse",
            "match",
            "pattern",
            "annotate",
            "rank",
            "translate",
            "analyze",
            "plan",
            "exec",
        ] {
            let n = root.children.iter().filter(|c| c.name == phase).count();
            assert_eq!(n, 1, "phase `{phase}` appeared {n} times");
        }
        let exec = root.children.iter().find(|c| c.name == "exec").unwrap();
        assert!(exec.children.iter().all(|c| c.name.starts_with("op:")), "{exec:?}");
        assert!(!exec.children.is_empty());
        let analyze = root.children.iter().find(|c| c.name == "analyze").unwrap();
        assert!(analyze.children.iter().any(|c| c.name.starts_with("pass:")), "{analyze:?}");
        // Leaf-layer counters reached the trace without API plumbing.
        assert!(trace.counters.contains_key("index.probes"), "{:?}", trace.counters);
        assert!(trace.counters.contains_key("exec.rows_out"), "{:?}", trace.counters);
        // The recorder is back off afterwards.
        assert!(!engine.recorder().is_enabled());
    }

    #[test]
    fn explain_traced_has_interpretation_phases() {
        let engine = Engine::new(university::normalized()).unwrap();
        let (ex, trace) = engine.explain_traced("Green SUM Credit").unwrap();
        assert!(!ex.patterns.is_empty());
        let root = &trace.roots[0];
        assert_eq!(root.name, "explain");
        for phase in ["parse", "match", "pattern", "annotate", "rank"] {
            assert!(root.children.iter().any(|c| c.name == phase), "{phase} missing");
        }
    }

    /// Untraced calls leave nothing behind: the recorder stays disabled
    /// and a later traced call sees only its own spans.
    #[test]
    fn untraced_answer_records_nothing() {
        let engine = Engine::new(university::normalized()).unwrap();
        engine.answer("Green SUM Credit", 1).unwrap();
        assert!(!engine.recorder().is_enabled());
        assert!(engine.recorder().take().is_empty());
        let (_, trace) = engine.answer_traced("Java SUM Price", 1).unwrap();
        assert_eq!(trace.roots.len(), 1);
    }
}
