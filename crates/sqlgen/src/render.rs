//! Pretty-printing of [`SelectStatement`] in the paper's listing style.
//!
//! The paper prints predicates such as `S.Sname contains 'Green'`; this is
//! rendered verbatim (its standard-SQL equivalent would be
//! `LOWER(S.Sname) LIKE '%green%'`). Derived tables are rendered inline:
//! `(SELECT DISTINCT Lid, Code FROM Teach) T`.
//!
//! [`render_spanned`] additionally reports where each clause element
//! landed in the rendered text, so diagnostics (the `aqks-analyze` crate)
//! can point at the offending SQL fragment.

use std::fmt;

use crate::ast::{Predicate, SelectItem, SelectStatement, TableExpr};

/// Which clause element a [`SqlSpan`] covers, with its index within the
/// clause.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpanKind {
    /// `items[i]` of the SELECT list.
    SelectItem(usize),
    /// `from[i]` of the FROM clause (a derived table's span covers the
    /// whole parenthesized subquery plus its alias).
    FromItem(usize),
    /// `predicates[i]` of the WHERE clause.
    Predicate(usize),
    /// `group_by[i]`.
    GroupBy(usize),
    /// `order_by[i]`.
    OrderBy(usize),
    /// The LIMIT clause.
    Limit,
}

/// A byte range of the rendered SQL covering one clause element of the
/// statement at `path` (chain of FROM indices from the root, matching
/// [`SelectStatement::walk`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SqlSpan {
    /// Derived-table chain from the root statement.
    pub path: Vec<usize>,
    /// Clause element covered.
    pub kind: SpanKind,
    /// Byte offset of the first character.
    pub start: usize,
    /// Byte offset one past the last character.
    pub end: usize,
}

impl fmt::Display for SelectStatement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&render(self))
    }
}

/// Renders a statement as multi-line SQL (top level) with nested derived
/// tables rendered inline.
pub fn render(stmt: &SelectStatement) -> String {
    render_spanned(stmt).0
}

/// Renders a statement and reports the byte span of every clause element,
/// including those inside derived tables.
pub fn render_spanned(stmt: &SelectStatement) -> (String, Vec<SqlSpan>) {
    let mut out = String::new();
    let mut spans = Vec::new();
    render_into(stmt, &mut out, true, &mut Vec::new(), &mut spans);
    (out, spans)
}

fn render_into(
    stmt: &SelectStatement,
    out: &mut String,
    multiline: bool,
    path: &mut Vec<usize>,
    spans: &mut Vec<SqlSpan>,
) {
    let sep = if multiline { "\n" } else { " " };
    fn note(spans: &mut Vec<SqlSpan>, path: &[usize], kind: SpanKind, start: usize, end: usize) {
        spans.push(SqlSpan { path: path.to_vec(), kind, start, end });
    }

    out.push_str("SELECT ");
    if stmt.distinct {
        out.push_str("DISTINCT ");
    }
    for (i, item) in stmt.items.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        let start = out.len();
        out.push_str(&render_item(item));
        note(spans, path, SpanKind::SelectItem(i), start, out.len());
    }

    out.push_str(sep);
    out.push_str("FROM ");
    for (i, item) in stmt.from.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        let start = out.len();
        match item {
            TableExpr::Relation { name, alias } => {
                if name.eq_ignore_ascii_case(alias) {
                    out.push_str(name);
                } else {
                    out.push_str(name);
                    out.push(' ');
                    out.push_str(alias);
                }
            }
            TableExpr::Derived { query, alias } => {
                out.push('(');
                path.push(i);
                render_into(query, out, false, path, spans);
                path.pop();
                out.push_str(") ");
                out.push_str(alias);
            }
        }
        spans.push(SqlSpan {
            path: path.clone(),
            kind: SpanKind::FromItem(i),
            start,
            end: out.len(),
        });
    }

    if !stmt.predicates.is_empty() {
        out.push_str(sep);
        out.push_str("WHERE ");
        for (i, p) in stmt.predicates.iter().enumerate() {
            if i > 0 {
                out.push_str(" AND ");
            }
            let start = out.len();
            out.push_str(&render_pred(p));
            note(spans, path, SpanKind::Predicate(i), start, out.len());
        }
    }

    if !stmt.group_by.is_empty() {
        out.push_str(sep);
        out.push_str("GROUP BY ");
        for (i, c) in stmt.group_by.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            let start = out.len();
            out.push_str(&c.to_string());
            note(spans, path, SpanKind::GroupBy(i), start, out.len());
        }
    }

    if !stmt.order_by.is_empty() {
        out.push_str(sep);
        out.push_str("ORDER BY ");
        for (i, k) in stmt.order_by.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            let start = out.len();
            if k.desc {
                out.push_str(&format!("{} DESC", k.column));
            } else {
                out.push_str(&k.column.to_string());
            }
            note(spans, path, SpanKind::OrderBy(i), start, out.len());
        }
    }

    if let Some(limit) = stmt.limit {
        out.push_str(sep);
        let start = out.len();
        out.push_str(&format!("LIMIT {limit}"));
        note(spans, path, SpanKind::Limit, start, out.len());
    }
}

fn render_item(item: &SelectItem) -> String {
    match item {
        SelectItem::Column { col, alias: None } => col.to_string(),
        SelectItem::Column { col, alias: Some(a) } => format!("{col} AS {a}"),
        SelectItem::Aggregate { func, arg, distinct, alias } => {
            let inner = if *distinct { format!("DISTINCT {arg}") } else { arg.to_string() };
            format!("{}({inner}) AS {alias}", func.keyword())
        }
    }
}

fn render_pred(p: &Predicate) -> String {
    match p {
        Predicate::JoinEq(a, b) => format!("{a}={b}"),
        Predicate::Contains(c, text) => format!("{c} contains '{text}'"),
        Predicate::Eq(c, v) => match v {
            aqks_relational::Value::Str(s) => format!("{c}='{s}'"),
            other => format!("{c}={other}"),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{AggFunc, ColumnRef};

    /// Builds the paper's Example 5 statement and checks the rendering
    /// matches the listing (modulo whitespace).
    #[test]
    fn example5_rendering() {
        let stmt = SelectStatement {
            distinct: false,
            items: vec![
                SelectItem::Column { col: ColumnRef::new("S1", "Sid"), alias: None },
                SelectItem::Aggregate {
                    func: AggFunc::Count,
                    arg: ColumnRef::new("C", "Code"),
                    distinct: false,
                    alias: "numCode".into(),
                },
            ],
            from: vec![
                TableExpr::Relation { name: "Course".into(), alias: "C".into() },
                TableExpr::Relation { name: "Enrol".into(), alias: "E1".into() },
                TableExpr::Relation { name: "Student".into(), alias: "S1".into() },
            ],
            predicates: vec![
                Predicate::JoinEq(ColumnRef::new("C", "Code"), ColumnRef::new("E1", "Code")),
                Predicate::JoinEq(ColumnRef::new("S1", "Sid"), ColumnRef::new("E1", "Sid")),
                Predicate::Contains(ColumnRef::new("S1", "Sname"), "Green".into()),
            ],
            group_by: vec![ColumnRef::new("S1", "Sid")],
            ..Default::default()
        };
        let sql = render(&stmt);
        assert_eq!(
            sql,
            "SELECT S1.Sid, COUNT(C.Code) AS numCode\n\
             FROM Course C, Enrol E1, Student S1\n\
             WHERE C.Code=E1.Code AND S1.Sid=E1.Sid AND S1.Sname contains 'Green'\n\
             GROUP BY S1.Sid"
        );
    }

    /// Derived tables render inline like Example 6's Teach projection.
    #[test]
    fn derived_table_rendering() {
        let inner = SelectStatement {
            distinct: true,
            items: vec![
                SelectItem::Column { col: ColumnRef::new("Teach", "Lid"), alias: None },
                SelectItem::Column { col: ColumnRef::new("Teach", "Code"), alias: None },
            ],
            from: vec![TableExpr::Relation { name: "Teach".into(), alias: "Teach".into() }],
            predicates: vec![],
            group_by: vec![],
            ..Default::default()
        };
        let stmt = SelectStatement {
            distinct: false,
            items: vec![SelectItem::Aggregate {
                func: AggFunc::Count,
                arg: ColumnRef::new("L", "Lid"),
                distinct: false,
                alias: "numLid".into(),
            }],
            from: vec![
                TableExpr::Relation { name: "Lecturer".into(), alias: "L".into() },
                TableExpr::Derived { query: Box::new(inner), alias: "T".into() },
            ],
            predicates: vec![Predicate::JoinEq(
                ColumnRef::new("T", "Lid"),
                ColumnRef::new("L", "Lid"),
            )],
            group_by: vec![],
            ..Default::default()
        };
        let sql = render(&stmt);
        assert!(sql.contains("(SELECT DISTINCT Teach.Lid, Teach.Code FROM Teach) T"), "{sql}");
    }

    #[test]
    fn relation_alias_equal_to_name_is_not_repeated() {
        let stmt = SelectStatement {
            items: vec![SelectItem::Column { col: ColumnRef::new("Teach", "Lid"), alias: None }],
            from: vec![TableExpr::Relation { name: "Teach".into(), alias: "Teach".into() }],
            ..Default::default()
        };
        assert_eq!(render(&stmt), "SELECT Teach.Lid\nFROM Teach");
    }

    /// Spans address clause elements of the root and of nested derived
    /// tables; every span excerpts exactly its element's rendering.
    #[test]
    fn spans_cover_clause_elements() {
        let inner = SelectStatement {
            distinct: true,
            items: vec![SelectItem::Column { col: ColumnRef::new("Teach", "Lid"), alias: None }],
            from: vec![TableExpr::Relation { name: "Teach".into(), alias: "Teach".into() }],
            ..Default::default()
        };
        let stmt = SelectStatement {
            items: vec![SelectItem::Aggregate {
                func: AggFunc::Count,
                arg: ColumnRef::new("T", "Lid"),
                distinct: false,
                alias: "numLid".into(),
            }],
            from: vec![TableExpr::Derived { query: Box::new(inner), alias: "T".into() }],
            limit: Some(5),
            ..Default::default()
        };
        let (sql, spans) = render_spanned(&stmt);

        let find = |path: &[usize], kind: SpanKind| {
            spans
                .iter()
                .find(|s| s.path == path && s.kind == kind)
                .unwrap_or_else(|| panic!("{path:?} {kind:?} in {spans:?}"))
        };
        let item = find(&[], SpanKind::SelectItem(0));
        assert_eq!(&sql[item.start..item.end], "COUNT(T.Lid) AS numLid");
        let from = find(&[], SpanKind::FromItem(0));
        assert_eq!(&sql[from.start..from.end], "(SELECT DISTINCT Teach.Lid FROM Teach) T");
        let inner_item = find(&[0], SpanKind::SelectItem(0));
        assert_eq!(&sql[inner_item.start..inner_item.end], "Teach.Lid");
        let limit = find(&[], SpanKind::Limit);
        assert_eq!(&sql[limit.start..limit.end], "LIMIT 5");
        // Spans never exceed the rendered text.
        assert!(spans.iter().all(|s| s.start < s.end && s.end <= sql.len()));
    }

    /// `walk` visits root and nested statements with matching paths.
    #[test]
    fn walk_paths_match_span_paths() {
        let leaf = SelectStatement {
            items: vec![SelectItem::Column { col: ColumnRef::new("R", "x"), alias: None }],
            from: vec![TableExpr::Relation { name: "R".into(), alias: "R".into() }],
            ..Default::default()
        };
        let mid = SelectStatement {
            items: vec![SelectItem::Column { col: ColumnRef::new("L", "x"), alias: None }],
            from: vec![
                TableExpr::Relation { name: "S".into(), alias: "S".into() },
                TableExpr::Derived { query: Box::new(leaf), alias: "L".into() },
            ],
            ..Default::default()
        };
        let root = SelectStatement {
            items: vec![SelectItem::Column { col: ColumnRef::new("M", "x"), alias: None }],
            from: vec![TableExpr::Derived { query: Box::new(mid), alias: "M".into() }],
            ..Default::default()
        };
        let mut paths = Vec::new();
        root.walk(&mut |p, _| paths.push(p.to_vec()));
        assert_eq!(paths, vec![vec![], vec![0], vec![0, 1]]);
    }
}
