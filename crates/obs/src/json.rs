//! A minimal recursive-descent JSON well-formedness checker.
//!
//! The trace exporters in this crate hand-serialize JSON (the workspace
//! is dependency-free), so tests and the CLI verify that exported
//! documents actually parse before anyone feeds them to
//! `chrome://tracing`. This is a validator, not a DOM: it checks syntax
//! per RFC 8259 and returns the byte offset of the first error.

/// Validates that `input` is exactly one JSON value (plus whitespace).
pub fn validate(input: &str) -> Result<(), String> {
    let b = input.as_bytes();
    let mut pos = 0;
    skip_ws(b, &mut pos);
    value(b, &mut pos)?;
    skip_ws(b, &mut pos);
    if pos != b.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(())
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn value(b: &[u8], pos: &mut usize) -> Result<(), String> {
    match b.get(*pos) {
        Some(b'{') => object(b, pos),
        Some(b'[') => array(b, pos),
        Some(b'"') => string(b, pos),
        Some(b't') => literal(b, pos, "true"),
        Some(b'f') => literal(b, pos, "false"),
        Some(b'n') => literal(b, pos, "null"),
        Some(c) if c.is_ascii_digit() || *c == b'-' => number(b, pos),
        Some(c) => Err(format!("unexpected byte `{}` at {}", *c as char, *pos)),
        None => Err(format!("unexpected end of input at {pos}", pos = *pos)),
    }
}

fn literal(b: &[u8], pos: &mut usize, lit: &str) -> Result<(), String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(())
    } else {
        Err(format!("bad literal at byte {}", *pos))
    }
}

fn object(b: &[u8], pos: &mut usize) -> Result<(), String> {
    *pos += 1; // '{'
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(());
    }
    loop {
        skip_ws(b, pos);
        string(b, pos)?;
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b':') {
            return Err(format!("expected `:` at byte {}", *pos));
        }
        *pos += 1;
        skip_ws(b, pos);
        value(b, pos)?;
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(());
            }
            _ => return Err(format!("expected `,` or `}}` at byte {}", *pos)),
        }
    }
}

fn array(b: &[u8], pos: &mut usize) -> Result<(), String> {
    *pos += 1; // '['
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(());
    }
    loop {
        skip_ws(b, pos);
        value(b, pos)?;
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(());
            }
            _ => return Err(format!("expected `,` or `]` at byte {}", *pos)),
        }
    }
}

fn string(b: &[u8], pos: &mut usize) -> Result<(), String> {
    if b.get(*pos) != Some(&b'"') {
        return Err(format!("expected string at byte {}", *pos));
    }
    *pos += 1;
    while let Some(&c) = b.get(*pos) {
        match c {
            b'"' => {
                *pos += 1;
                return Ok(());
            }
            b'\\' => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => *pos += 1,
                    Some(b'u') => {
                        if b.len() < *pos + 5
                            || !b[*pos + 1..*pos + 5].iter().all(u8::is_ascii_hexdigit)
                        {
                            return Err(format!("bad \\u escape at byte {}", *pos));
                        }
                        *pos += 5;
                    }
                    _ => return Err(format!("bad escape at byte {}", *pos)),
                }
            }
            0x00..=0x1f => return Err(format!("raw control char in string at byte {}", *pos)),
            _ => *pos += 1,
        }
    }
    Err("unterminated string".to_string())
}

fn number(b: &[u8], pos: &mut usize) -> Result<(), String> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let digits = |b: &[u8], pos: &mut usize| {
        let s = *pos;
        while pos_digit(b, *pos) {
            *pos += 1;
        }
        *pos > s
    };
    if !digits(b, pos) {
        return Err(format!("bad number at byte {start}"));
    }
    if b.get(*pos) == Some(&b'.') {
        *pos += 1;
        if !digits(b, pos) {
            return Err(format!("bad fraction at byte {start}"));
        }
    }
    if matches!(b.get(*pos), Some(b'e' | b'E')) {
        *pos += 1;
        if matches!(b.get(*pos), Some(b'+' | b'-')) {
            *pos += 1;
        }
        if !digits(b, pos) {
            return Err(format!("bad exponent at byte {start}"));
        }
    }
    Ok(())
}

fn pos_digit(b: &[u8], pos: usize) -> bool {
    b.get(pos).is_some_and(u8::is_ascii_digit)
}

#[cfg(test)]
mod tests {
    use super::validate;

    #[test]
    fn accepts_valid_documents() {
        for doc in [
            "{}",
            "[]",
            "null",
            "-12.5e+3",
            r#"{"a":[1,2,{"b":"c\né"}],"d":true}"#,
            "  {\"x\": [\n]}\n",
        ] {
            validate(doc).unwrap_or_else(|e| panic!("{doc}: {e}"));
        }
    }

    #[test]
    fn rejects_malformed_documents() {
        for doc in [
            "",
            "{",
            "[1,]",
            "{\"a\" 1}",
            "{\"a\":1,}",
            "\"unterminated",
            "01x",
            "{} trailing",
            "{\"bad\\q\":1}",
        ] {
            assert!(validate(doc).is_err(), "accepted: {doc}");
        }
    }
}
