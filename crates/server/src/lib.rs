//! `aqks-server` — a fault-tolerant concurrent query service.
//!
//! The engine answers keyword queries involving aggregates and GROUPBY
//! (Zeng, Lee & Ling, EDBT 2016); this crate makes it a long-running
//! shared service. One process loads a database once and serves many
//! clients over a line-oriented TCP protocol, sharing the immutable
//! schema graph and inverted index across a fixed worker pool through
//! an `Arc<Engine>`.
//!
//! The design center is *robustness under load and faults*, not raw
//! throughput:
//!
//! * **Admission control** — a bounded queue with depth-based rejection
//!   at enqueue and age-based shedding at dequeue, both surfaced as a
//!   typed, retryable `overloaded` wire error.
//! * **Graceful degradation** — per-request deadlines (client hints
//!   clamped by server policy) flow into the guard [`aqks_guard::Budget`];
//!   exhaustion produces an `OK … degraded=` answer with partial
//!   results, never a dropped connection.
//! * **Lifecycle hardening** — read/write timeouts, a maximum frame
//!   length with skip-to-newline recovery, idle reaping, and a clean
//!   drain on shutdown.
//! * **Fault containment** — the worker path runs behind
//!   `catch_unwind`, so a panicking query answers `ERR code=internal`
//!   and the pool keeps serving; `server.*` failpoints let chaos sweeps
//!   prove every injected fault surfaces as a typed wire error.
//!
//! [`protocol`] defines the wire grammar, [`server`] the service, and
//! [`client`] a retrying client with exponential backoff and jitter.

pub mod client;
pub mod protocol;
pub mod server;

pub use client::{Client, ClientConfig, ClientError};
pub use protocol::{Answer, ClientFrame, ErrorCode, Request, Response, WireError, WireInterp};
pub use server::{Server, ServerConfig, ServerStats};

// Compile-time proof that the public service types cross thread
// boundaries safely (the worker pool, connection threads, and bench
// clients all share them). Mirrors `sqlgen::par`.
const fn assert_send_sync<T: Send + Sync>() {}
const _: () = assert_send_sync::<aqks_core::Engine>();
const _: () = assert_send_sync::<std::sync::Arc<aqks_core::Engine>>();
const _: () = assert_send_sync::<Request>();
const _: () = assert_send_sync::<Response>();
const _: () = assert_send_sync::<Answer>();
const _: () = assert_send_sync::<WireError>();
const _: () = assert_send_sync::<ErrorCode>();
const _: () = assert_send_sync::<ServerConfig>();
const _: () = assert_send_sync::<ServerStats>();
const _: () = assert_send_sync::<Server>();
const _: () = assert_send_sync::<Client>();
