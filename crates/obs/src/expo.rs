//! Exposition of a metrics [`Snapshot`]: Prometheus text format
//! v0.0.4 and a JSON form.
//!
//! Naming follows Prometheus conventions: counters gain a `_total`
//! suffix, and nanosecond-valued histograms (names ending `_ns`) are
//! exported in base seconds as `*_seconds` with scaled `le` bounds and
//! sums. Output order is the snapshot's — sorted by name then label —
//! so the exposition is byte-stable for a given set of values (pinned
//! by a golden-file test).
//!
//! Histograms are emitted sparsely: one cumulative `_bucket` line per
//! *non-empty* bucket plus the mandatory `+Inf`, `_sum`, and `_count`
//! series, keeping the text bounded even though the internal layout
//! has [`crate::metrics::BUCKETS`] buckets.

use crate::metrics::{bucket_upper, HistogramSnapshot, Metric, MetricValue, Snapshot, Unit};

/// Renders the snapshot in Prometheus text format v0.0.4.
pub fn render_prometheus(snap: &Snapshot) -> String {
    let mut out = String::new();
    let mut last_family: Option<String> = None;
    for m in &snap.metrics {
        let family = family_name(m);
        if last_family.as_deref() != Some(family.as_str()) {
            out.push_str(&format!("# TYPE {family} {}\n", type_name(m)));
            last_family = Some(family.clone());
        }
        match &m.value {
            MetricValue::Counter(v) => {
                out.push_str(&format!("{family}{} {v}\n", label_set(m, None)));
            }
            MetricValue::Gauge(v) => {
                out.push_str(&format!("{family}{} {v}\n", label_set(m, None)));
            }
            MetricValue::Histogram(h) => render_histogram(&mut out, &family, m, h),
        }
    }
    out
}

fn render_histogram(out: &mut String, family: &str, m: &Metric, h: &HistogramSnapshot) {
    let seconds = m.unit == Unit::Nanos;
    let mut cum = 0u64;
    for &(i, n) in &h.buckets {
        cum += n;
        let le = if seconds { fmt_seconds(bucket_upper(i)) } else { bucket_upper(i).to_string() };
        out.push_str(&format!("{family}_bucket{} {cum}\n", label_set(m, Some(&le))));
    }
    out.push_str(&format!("{family}_bucket{} {}\n", label_set(m, Some("+Inf")), h.count));
    let sum = if seconds { fmt_seconds(h.sum) } else { h.sum.to_string() };
    out.push_str(&format!("{family}_sum{} {sum}\n", label_set(m, None)));
    out.push_str(&format!("{family}_count{} {}\n", label_set(m, None), h.count));
}

/// Exposition family name: `_total` for counters, `_ns` → `_seconds`
/// for nanosecond histograms.
fn family_name(m: &Metric) -> String {
    match (&m.value, m.unit) {
        (MetricValue::Counter(_), _) => format!("{}_total", m.name),
        (MetricValue::Histogram(_), Unit::Nanos) => {
            format!("{}_seconds", m.name.strip_suffix("_ns").unwrap_or(m.name))
        }
        _ => m.name.to_string(),
    }
}

fn type_name(m: &Metric) -> &'static str {
    match &m.value {
        MetricValue::Counter(_) => "counter",
        MetricValue::Gauge(_) => "gauge",
        MetricValue::Histogram(_) => "histogram",
    }
}

/// The `{key="value",le="..."}` label set (empty string when bare).
fn label_set(m: &Metric, le: Option<&str>) -> String {
    let mut parts = Vec::new();
    if let Some((k, v)) = m.label {
        parts.push(format!("{k}=\"{}\"", escape_label(v)));
    }
    if let Some(le) = le {
        parts.push(format!("le=\"{le}\""));
    }
    if parts.is_empty() {
        String::new()
    } else {
        format!("{{{}}}", parts.join(","))
    }
}

fn escape_label(v: &str) -> String {
    v.replace('\\', "\\\\").replace('"', "\\\"").replace('\n', "\\n")
}

/// Formats a nanosecond count as seconds with no trailing zeros and no
/// exponent, e.g. `7` → `0.000000007`, `1_500_000_000` → `1.5`.
fn fmt_seconds(ns: u64) -> String {
    if ns == u64::MAX {
        // The top bucket's bound; Prometheus has +Inf for the real
        // catch-all, this keeps the finite bound representable.
        return format!("{:.3}", ns as f64 / 1e9);
    }
    let s = format!("{}.{:09}", ns / 1_000_000_000, ns % 1_000_000_000);
    let trimmed = s.trim_end_matches('0').trim_end_matches('.');
    if trimmed.is_empty() {
        "0".to_string()
    } else {
        trimmed.to_string()
    }
}

/// Renders the snapshot as a JSON document:
/// `{"metrics": [{"name": …, "type": …, …}]}`. Histogram entries carry
/// count/sum/min/max, the p50/p95/p99 estimates, and the non-empty
/// cumulative buckets as `[upper_bound, cumulative_count]` pairs.
pub fn render_json(snap: &Snapshot) -> String {
    let mut out = String::from("{\n  \"metrics\": [\n");
    for (idx, m) in snap.metrics.iter().enumerate() {
        out.push_str("    {");
        out.push_str(&format!("\"name\": \"{}\"", crate::trace::escape(m.name)));
        if let Some((k, v)) = m.label {
            out.push_str(&format!(
                ", \"label\": {{\"{}\": \"{}\"}}",
                crate::trace::escape(k),
                crate::trace::escape(v)
            ));
        }
        match &m.value {
            MetricValue::Counter(v) => {
                out.push_str(&format!(", \"type\": \"counter\", \"value\": {v}"));
            }
            MetricValue::Gauge(v) => {
                out.push_str(&format!(", \"type\": \"gauge\", \"value\": {v}"));
            }
            MetricValue::Histogram(h) => {
                out.push_str(&format!(
                    ", \"type\": \"histogram\", \"unit\": \"{}\"",
                    unit_name(m.unit)
                ));
                out.push_str(&format!(
                    ", \"count\": {}, \"sum\": {}, \"min\": {}, \"max\": {}",
                    h.count, h.sum, h.min, h.max
                ));
                out.push_str(&format!(
                    ", \"p50\": {}, \"p95\": {}, \"p99\": {}",
                    h.quantile(0.50),
                    h.quantile(0.95),
                    h.quantile(0.99)
                ));
                out.push_str(", \"buckets\": [");
                let mut cum = 0u64;
                for (j, &(i, n)) in h.buckets.iter().enumerate() {
                    cum += n;
                    if j > 0 {
                        out.push_str(", ");
                    }
                    out.push_str(&format!("[{}, {cum}]", bucket_upper(i)));
                }
                out.push(']');
            }
        }
        out.push_str(&format!("}}{}\n", if idx + 1 < snap.metrics.len() { "," } else { "" }));
    }
    out.push_str("  ]\n}\n");
    out
}

fn unit_name(u: Unit) -> &'static str {
    match u {
        Unit::Count => "count",
        Unit::Nanos => "ns",
        Unit::Bytes => "bytes",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Registry;

    fn sample_registry() -> Registry {
        let r = Registry::new();
        r.counter("aqks_sample_queries").add(42);
        r.labeled_counter("aqks_sample_trips", "site", "engine.answer").add(1);
        r.labeled_counter("aqks_sample_trips", "site", "ops.Scan").add(2);
        r.gauge("aqks_sample_retained").set(7);
        let h = r.histogram("aqks_sample_latency_ns", crate::metrics::Unit::Nanos);
        for v in [0, 1, 7, 120, 1_000_000, 30_000_000_000] {
            h.record(v);
        }
        let b = r.labeled_histogram(
            "aqks_sample_peak_bytes",
            "op",
            "HashJoin",
            crate::metrics::Unit::Bytes,
        );
        b.record(4096);
        b.record(65536);
        r
    }

    #[test]
    fn prometheus_output_is_wellformed_and_ordered() {
        let text = render_prometheus(&sample_registry().snapshot());
        // One TYPE line per family, families in sorted name order.
        let types: Vec<&str> = text.lines().filter(|l| l.starts_with("# TYPE")).collect();
        assert_eq!(
            types,
            vec![
                "# TYPE aqks_sample_latency_seconds histogram",
                "# TYPE aqks_sample_peak_bytes histogram",
                "# TYPE aqks_sample_queries_total counter",
                "# TYPE aqks_sample_retained gauge",
                "# TYPE aqks_sample_trips_total counter",
            ]
        );
        assert!(text.contains("aqks_sample_queries_total 42\n"));
        assert!(text.contains("aqks_sample_trips_total{site=\"ops.Scan\"} 2\n"));
        assert!(text.contains("aqks_sample_latency_seconds_count 6\n"));
        assert!(text.contains("le=\"+Inf\"} 6\n"));
        // Nanosecond values scale to seconds without exponent notation.
        assert!(text.contains("le=\"0.000000001\"} 2\n"), "text:\n{text}");
        assert!(text.contains("aqks_sample_peak_bytes_count{op=\"HashJoin\"} 2\n"));
    }

    #[test]
    fn json_snapshot_is_valid_json() {
        let json = render_json(&sample_registry().snapshot());
        crate::json::validate(&json).expect("snapshot JSON is RFC-8259 valid");
        assert!(json.contains("\"type\": \"histogram\""));
        assert!(json.contains("\"p95\":"));
    }

    #[test]
    fn empty_histogram_exposes_zero_series() {
        let r = Registry::new();
        r.histogram("aqks_sample_empty_ns", crate::metrics::Unit::Nanos);
        let text = render_prometheus(&r.snapshot());
        assert!(text.contains("aqks_sample_empty_seconds_bucket{le=\"+Inf\"} 0\n"));
        assert!(text.contains("aqks_sample_empty_seconds_sum 0\n"));
        assert!(text.contains("aqks_sample_empty_seconds_count 0\n"));
        crate::json::validate(&render_json(&r.snapshot())).expect("valid");
    }

    #[test]
    fn seconds_formatting_has_no_exponent_or_trailing_zeros() {
        assert_eq!(fmt_seconds(0), "0");
        assert_eq!(fmt_seconds(7), "0.000000007");
        assert_eq!(fmt_seconds(1_500_000_000), "1.5");
        assert_eq!(fmt_seconds(1_000_000_000), "1");
    }
}
