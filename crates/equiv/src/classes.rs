//! Equivalence-class partitioning of an interpretation's plan set.
//!
//! Canonicalizes every plan ([`crate::canon`]) and groups plans whose
//! canonical fingerprints collide: members of one class are provably
//! equivalent (each canonicalization step was certified against
//! inferred plan properties), so all but one representative per class
//! are redundant work.

use aqks_relational::Database;
use aqks_sqlgen::PlanNode;

use crate::canon::{canonicalize, Canonical};
use crate::EquivError;

/// One equivalence class: the canonical fingerprint and the indices
/// (into the analyzed plan set) of its members, in input order.
#[derive(Debug, Clone)]
pub struct EquivClass {
    /// Canonical fingerprint shared by every member.
    pub fingerprint: u64,
    /// Indices into the input plan slice.
    pub members: Vec<usize>,
}

/// The result of [`analyze`]: canonical forms plus the class partition.
#[derive(Debug, Clone)]
pub struct ClassAnalysis {
    /// Canonical form of each input plan, in input order.
    pub canonical: Vec<Canonical>,
    /// Equivalence classes in order of first appearance.
    pub classes: Vec<EquivClass>,
}

impl ClassAnalysis {
    /// Number of plans that are redundant with an earlier class member.
    pub fn duplicates(&self) -> usize {
        self.classes.iter().map(|c| c.members.len() - 1).sum()
    }

    /// Number of classes with more than one member.
    pub fn nontrivial_classes(&self) -> usize {
        self.classes.iter().filter(|c| c.members.len() > 1).count()
    }
}

/// Canonicalizes `plans` and partitions them into equivalence classes
/// by canonical fingerprint. Emits the `equiv.classes` observability
/// counter when an ambient span is active.
pub fn analyze(plans: &[PlanNode], db: &Database) -> Result<ClassAnalysis, EquivError> {
    let canonical: Vec<Canonical> =
        plans.iter().map(|p| canonicalize(p, db)).collect::<Result<_, _>>()?;
    let mut classes: Vec<EquivClass> = Vec::new();
    for (i, c) in canonical.iter().enumerate() {
        match classes.iter_mut().find(|cl| cl.fingerprint == c.fingerprint) {
            Some(cl) => cl.members.push(i),
            None => classes.push(EquivClass { fingerprint: c.fingerprint, members: vec![i] }),
        }
    }
    aqks_obs::counter("equiv.classes", classes.len() as u64);
    if aqks_obs::metrics::enabled() {
        CLASSES.add(classes.len() as u64);
        let dups = plans.len().saturating_sub(classes.len()) as u64;
        DUPLICATES.add(dups);
    }
    Ok(ClassAnalysis { canonical, classes })
}

/// Equivalence classes found across all [`analyze`] calls.
static CLASSES: aqks_obs::metrics::Counter = aqks_obs::metrics::Counter::new("aqks_equiv_classes");

/// Plans proven redundant with an earlier class member — each one is a
/// statement the shared executor never has to run.
static DUPLICATES: aqks_obs::metrics::Counter =
    aqks_obs::metrics::Counter::new("aqks_equiv_duplicates");
