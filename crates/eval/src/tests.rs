//! Smoke tests for the harness itself (the substantive shape assertions
//! live in the workspace-level `tests/table_shapes.rs`).

use crate::tables::{render_markdown, run_table5};
use crate::workload::Scale;
use crate::{fig11, run_fig11};

#[test]
fn table5_renders_all_rows() {
    let rows = run_table5(Scale::Small);
    assert_eq!(rows.len(), 8);
    let md = render_markdown("Table 5", &rows);
    for id in ["T1", "T2", "T3", "T4", "T5", "T6", "T7", "T8"] {
        assert!(md.contains(&format!("| {id} |")), "{md}");
    }
    assert!(md.contains("N.A."), "T7/T8 unsupported rows render: {md}");
}

#[test]
fn fig11_produces_positive_timings() {
    let (tpch, acmdl) = run_fig11(Scale::Small, 3);
    assert_eq!((tpch.len(), acmdl.len()), (8, 8));
    for r in tpch.iter().chain(&acmdl) {
        assert!(r.ours_us > 0.0, "{}", r.id);
        assert!(r.sqak_us >= 0.0, "{}", r.id);
    }
    let md = fig11::render_markdown("Fig 11", &tpch);
    assert!(md.contains("| T1 |"), "{md}");
}

#[test]
fn outcome_cell_truncates_long_answer_lists() {
    use crate::tables::EngineOutcome;
    let o = EngineOutcome::Answers {
        count: 10,
        values: (0..10).map(|i| i.to_string()).collect(),
        sql: String::new(),
    };
    let cell = o.cell();
    assert!(cell.starts_with("10 answer(s):"), "{cell}");
    assert!(cell.ends_with(", ..."), "{cell}");
    let u = EngineOutcome::Unsupported("self join".into());
    assert_eq!(u.cell(), "N.A. (self join)");
}
