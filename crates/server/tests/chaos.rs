//! Chaos sweep: with the `failpoints` feature, every injected fault —
//! at the accept, enqueue, execute, and respond sites, inside the
//! engine, and a worker panic — must surface as a *typed* wire error
//! while the server keeps serving. Runs as a single sequential test
//! because failpoint arming is process-global.

#![cfg(feature = "failpoints")]

use std::io::{BufRead, BufReader};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

use aqks_core::Engine;
use aqks_datasets::university;
use aqks_guard::failpoint;
use aqks_server::{Client, ClientConfig, ClientError, ErrorCode, Request, Server, ServerConfig};

#[test]
fn every_injected_fault_surfaces_typed_and_server_survives() {
    let engine = Arc::new(Engine::new(university::normalized()).expect("dataset builds"));
    let server = Server::start(engine, ServerConfig::default()).expect("server binds");
    let cfg = ClientConfig { max_attempts: 1, ..ClientConfig::default() };

    // --- server.accept: the connection gets a typed frame, not a slam.
    failpoint::enable_global("server.accept");
    let stream = TcpStream::connect(server.addr()).expect("connect");
    stream.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    let mut line = String::new();
    BufReader::new(stream).read_line(&mut line).expect("read fault frame");
    assert!(line.starts_with("ERR code=fault"), "accept fault is typed: {line}");
    assert!(line.contains("server.accept"), "{line}");
    failpoint::disable_global("server.accept");

    // --- queue/worker/respond sites and an engine-internal site: each
    // yields its own typed error on an otherwise healthy connection.
    let mut c = Client::connect(server.addr(), cfg.clone());
    for (site, code) in [
        ("server.enqueue", ErrorCode::Fault),
        ("server.execute", ErrorCode::Fault),
        ("server.respond", ErrorCode::Fault),
        ("index.lookup", ErrorCode::Fault),
        ("server.worker.panic", ErrorCode::Internal),
    ] {
        failpoint::enable_global(site);
        let err = c
            .query(&Request::new("Green SUM Credit"))
            .expect_err(&format!("site {site} must fail"));
        match err {
            ClientError::Server(w) => {
                assert_eq!(w.code, code, "site {site}: {}", w.message);
                if w.code == ErrorCode::Fault {
                    assert!(w.message.contains(site), "names the site: {}", w.message);
                } else {
                    assert!(w.message.contains("panic"), "panic is reported: {}", w.message);
                }
            }
            other => panic!("site {site}: expected typed server error, got {other}"),
        }
        failpoint::disable_global(site);
        // Recovery on the SAME connection: the fault poisoned nothing.
        let ok = c.query(&Request::new("Green SUM Credit")).expect("server recovered");
        assert_eq!(ok.interpretations.len(), 1, "post-{site} answer intact");
        assert!(!ok.interpretations[0].rows.is_empty());
    }
    failpoint::clear_global();

    // Post-sweep: a fresh connection answers correctly and no error
    // ever killed a worker (every query above got a response).
    let mut fresh = Client::connect(server.addr(), cfg);
    let answer = fresh.query(&Request::new("Java SUM Price")).expect("post-sweep query");
    assert!(!answer.interpretations.is_empty());
    let stats = server.stats();
    assert_eq!(stats.ok as usize, 5 + 1, "one recovery per site plus the post-sweep query");
    server.shutdown();
}

#[test]
fn worker_panic_does_not_poison_the_pool() {
    // Satellite regression: a panicking query on the worker path becomes
    // a typed `internal` error and the same worker keeps serving. Use a
    // single-worker pool so the recovery query provably runs on the
    // thread that caught the panic.
    let engine = Arc::new(Engine::new(university::normalized()).expect("dataset builds"));
    let cfg = ServerConfig { workers: 1, ..ServerConfig::default() };
    let server = Server::start(engine, cfg).expect("server binds");
    let mut c =
        Client::connect(server.addr(), ClientConfig { max_attempts: 1, ..ClientConfig::default() });

    failpoint::enable_global("server.worker.panic");
    for _ in 0..3 {
        let err = c.query(&Request::new("Green SUM Credit")).expect_err("panic injected");
        match err {
            ClientError::Server(w) => {
                assert_eq!(w.code, ErrorCode::Internal);
                assert!(!w.code.retryable());
                assert!(w.message.contains("server.worker.panic"), "{}", w.message);
            }
            other => panic!("expected internal error, got {other}"),
        }
    }
    failpoint::disable_global("server.worker.panic");

    let answer = c.query(&Request::new("Green SUM Credit")).expect("sole worker survived");
    assert_eq!(answer.interpretations.len(), 1);
    let stats = server.stats();
    assert_eq!(stats.errors, 3);
    assert_eq!(stats.ok, 1);
    server.shutdown();
}
