//! Certified rule-based canonicalization of physical plans.
//!
//! The canonicalizer rewrites a [`PlanNode`] tree into a normal form in
//! which semantically equivalent plans become structurally identical,
//! so the structural fingerprint from `aqks-plancheck` doubles as a
//! semantic-equivalence key. The rules:
//!
//! - **Predicate normalization** — `EqCols` operands ordered low/high
//!   (column equality is symmetric), predicate lists sorted and
//!   deduplicated.
//! - **Filter pushdown normal form** — filter predicates are pushed as
//!   far down as their column block allows: through joins into the
//!   matching input, into `Scan.pushed`, and to a Filter directly above
//!   a derived table. Plans produced with pushdown disabled converge to
//!   the same form as plans produced with it enabled.
//! - **Commutative join-input ordering** — hash- and cross-join inputs
//!   ordered by the canonical fingerprint of the input subtrees (inner
//!   joins commute); join key pairs sorted and deduplicated.
//! - **Project collapsing** — `Project` over `Project` composes into
//!   one.
//! - **Estimate recomputation** — `est_rows` and hash-join build sides
//!   are recomputed bottom-up from canonical structure alone, so two
//!   structurally identical canonical trees always agree on the
//!   build-side bit the fingerprint includes.
//!
//! Every rewrite is *certified*: the rewritten subtree's inferred
//! properties (output schema and provenance, functional dependencies,
//! uniqueness, sortedness, cardinality bound — see
//! [`aqks_plancheck::props`]) are compared against the original
//! subtree's, modulo the rewrite's declared output-column permutation.
//! Any divergence rejects the rewrite with
//! [`EquivError::Certificate`]; the final canonical plan must
//! additionally pass [`aqks_plancheck::verify()`].

use aqks_plancheck::props::{infer, NodeProps};
use aqks_plancheck::{fingerprint, verify};
use aqks_relational::Database;
use aqks_sqlgen::{PhysAggItem, PhysPred, PlanNode, PlanOp};

use crate::EquivError;

/// A canonicalized plan with its canonical fingerprint.
#[derive(Debug, Clone)]
pub struct Canonical {
    /// The plan in canonical normal form (fresh pre-order node ids).
    pub plan: PlanNode,
    /// `aqks_plancheck::fingerprint` of the canonical plan — the
    /// semantic-equivalence key.
    pub fingerprint: u64,
    /// Output-column permutation: original output column `i` is
    /// canonical output column `perm[i]`. Identity for statement-level
    /// plans (their root Project/Aggregate pins the layout); subtree
    /// canonicalization (e.g. of a bare join) may permute.
    pub perm: Vec<usize>,
}

/// Canonicalization runs to a fixpoint; two passes settle every plan
/// the planner emits (pushdown moves predicates, the next pass
/// re-orders joins over the settled children). The cap is a safety
/// net, not a budget.
const MAX_PASSES: usize = 5;

/// Canonicalizes `plan`, certifying every rewrite against the
/// properties `aqks_plancheck::props` infers for the original subtree.
pub fn canonicalize(plan: &PlanNode, db: &Database) -> Result<Canonical, EquivError> {
    let mut cur = plan.clone();
    let mut perm: Vec<usize> = (0..plan.cols.len()).collect();
    let mut fp = fingerprint(&cur);
    for _ in 0..MAX_PASSES {
        let (mut next, pass_perm) = canon_node(&cur, db)?;
        let mut n = 0;
        assign_ids(&mut next, &mut n);
        perm = perm.iter().map(|&i| pass_perm[i]).collect();
        let next_fp = fingerprint(&next);
        cur = next;
        if next_fp == fp {
            break;
        }
        fp = next_fp;
    }
    verify(&cur, db, None).map_err(EquivError::Verify)?;
    Ok(Canonical { plan: cur, fingerprint: fp, perm })
}

/// One bottom-up canonicalization pass over a subtree. Returns the
/// rewritten subtree and the output-column permutation (original
/// column `i` → rewritten column `perm[i]`).
fn canon_node(node: &PlanNode, db: &Database) -> Result<(PlanNode, Vec<usize>), EquivError> {
    let mut kids = Vec::with_capacity(node.children.len());
    let mut perms = Vec::with_capacity(node.children.len());
    for c in &node.children {
        let (k, p) = canon_node(c, db)?;
        kids.push(k);
        perms.push(p);
    }
    let (new, perm, rule) = rebuild(node, kids, &perms, db);
    certify_rewrite(rule, node, &new, &perm, db)?;
    Ok((new, perm))
}

/// Checks the certificate for one rewrite: `after` (a rewrite of
/// `before` whose output column `i` moved to `perm[i]`) must preserve
/// every property [`aqks_plancheck::props::infer`] derives — column
/// provenance and types, functional dependencies (mutual implication),
/// uniqueness, sortedness, and the cardinality bound. Exposed so tests
/// can feed a deliberately unsound rewrite and watch it bounce.
pub fn certify_rewrite(
    rule: &'static str,
    before: &PlanNode,
    after: &PlanNode,
    perm: &[usize],
    db: &Database,
) -> Result<(), EquivError> {
    let a = infer_tree(before, db);
    let b = infer_tree(after, db);
    let reject = |detail: String| EquivError::Certificate { rule, node: before.id, detail };
    if perm.len() != a.cols.len() || a.cols.len() != b.cols.len() {
        return Err(reject(format!(
            "arity changed: {} columns with a {}-entry permutation onto {}",
            a.cols.len(),
            perm.len(),
            b.cols.len()
        )));
    }
    for (i, col) in a.cols.iter().enumerate() {
        let moved = &b.cols[perm[i]];
        if col != moved {
            return Err(reject(format!(
                "output column {i} changed provenance: {} is now {}",
                col.token(),
                moved.token()
            )));
        }
    }
    for fd in &a.fds.fds {
        if !b.fds.implies(&fd.lhs, &fd.rhs) {
            return Err(reject(format!("functional dependency lost: {fd}")));
        }
    }
    for fd in &b.fds.fds {
        if !a.fds.implies(&fd.lhs, &fd.rhs) {
            return Err(reject(format!("functional dependency invented: {fd}")));
        }
    }
    if a.unique != b.unique {
        return Err(reject(format!("uniqueness changed: {} -> {}", a.unique, b.unique)));
    }
    if a.max_rows != b.max_rows {
        return Err(reject(format!("cardinality bound changed: {} -> {}", a.max_rows, b.max_rows)));
    }
    let moved_order: Vec<(usize, bool)> = a.order.iter().map(|&(i, d)| (perm[i], d)).collect();
    if moved_order != b.order {
        return Err(reject(format!("sortedness changed: {:?} -> {:?}", a.order, b.order)));
    }
    Ok(())
}

/// Infers the properties of a whole subtree (bottom-up, pure).
fn infer_tree(node: &PlanNode, db: &Database) -> NodeProps {
    let children: Vec<NodeProps> = node.children.iter().map(|c| infer_tree(c, db)).collect();
    let refs: Vec<&NodeProps> = children.iter().collect();
    infer(node, &refs, db)
}

/// Rebuilds one node over already-canonical children, applying the
/// local rules. Returns the new node, the output permutation, and the
/// name of the governing rule (for certificate diagnostics).
fn rebuild(
    node: &PlanNode,
    mut kids: Vec<PlanNode>,
    perms: &[Vec<usize>],
    db: &Database,
) -> (PlanNode, Vec<usize>, &'static str) {
    match &node.op {
        PlanOp::Scan { relation, alias, pushed } => {
            let mut preds = pushed.clone();
            normalize_preds(&mut preds);
            let est = scan_est(db, relation, preds.len(), node.est_rows);
            let op =
                PlanOp::Scan { relation: relation.clone(), alias: alias.clone(), pushed: preds };
            let n = node.cols.len();
            (mk(op, Vec::new(), node.cols.clone(), est), identity(n), "pred-normalize")
        }
        PlanOp::DerivedTable { alias, names } => {
            let pc = perms[0].clone();
            let child = kids.remove(0);
            let mut new_names = names.clone();
            let mut new_cols = node.cols.clone();
            for (i, &t) in pc.iter().enumerate() {
                new_names[t] = names[i].clone();
                new_cols[t] = node.cols[i].clone();
            }
            let est = child.est_rows;
            let op = PlanOp::DerivedTable { alias: alias.clone(), names: new_names };
            (mk(op, vec![child], new_cols, est), pc, "canon")
        }
        PlanOp::HashJoin { left_keys, right_keys, .. } => {
            let mapped: Vec<(usize, usize)> = left_keys
                .iter()
                .zip(right_keys)
                .map(|(&l, &r)| (perms[0][l], perms[1][r]))
                .collect();
            let right = kids.pop().expect("join has two children");
            let left = kids.pop().expect("join has two children");
            let swap = fingerprint(&right) < fingerprint(&left);
            let (a, b) = if swap { (right, left) } else { (left, right) };
            let mut pairs: Vec<(usize, usize)> =
                if swap { mapped.iter().map(|&(l, r)| (r, l)).collect() } else { mapped };
            pairs.sort_unstable();
            pairs.dedup();
            let (lk, rk): (Vec<usize>, Vec<usize>) = pairs.into_iter().unzip();
            let perm = join_perm(swap, a.cols.len(), perms);
            let mut cols = a.cols.clone();
            cols.extend(b.cols.iter().cloned());
            let est = a.est_rows.max(b.est_rows);
            let build_left = a.est_rows < b.est_rows;
            let op = PlanOp::HashJoin { left_keys: lk, right_keys: rk, build_left };
            (
                mk(op, vec![a, b], cols, est),
                perm,
                if swap { "join-commute" } else { "join-key-sort" },
            )
        }
        PlanOp::CrossJoin => {
            let right = kids.pop().expect("join has two children");
            let left = kids.pop().expect("join has two children");
            let swap = fingerprint(&right) < fingerprint(&left);
            let (a, b) = if swap { (right, left) } else { (left, right) };
            let perm = join_perm(swap, a.cols.len(), perms);
            let mut cols = a.cols.clone();
            cols.extend(b.cols.iter().cloned());
            let est = a.est_rows.saturating_mul(b.est_rows);
            (
                mk(PlanOp::CrossJoin, vec![a, b], cols, est),
                perm,
                if swap { "join-commute" } else { "canon" },
            )
        }
        PlanOp::Filter { preds } => {
            let pc = perms[0].clone();
            let mut child = kids.remove(0);
            let mut mapped: Vec<PhysPred> = preds.iter().map(|p| remap_pred(p, &pc)).collect();
            normalize_preds(&mut mapped);
            let mut remaining = Vec::new();
            for p in mapped {
                if !try_push(&mut child, &p, db) {
                    remaining.push(p);
                }
            }
            if remaining.is_empty() {
                (child, pc, "filter-pushdown")
            } else {
                normalize_preds(&mut remaining);
                let est = discount_n(child.est_rows, remaining.len());
                let cols = child.cols.clone();
                let op = PlanOp::Filter { preds: remaining };
                (mk(op, vec![child], cols, est), pc, "filter-pushdown")
            }
        }
        PlanOp::HashAggregate { group, items, names } => {
            let pc = &perms[0];
            let child = kids.remove(0);
            let mut g: Vec<usize> = group.iter().map(|&i| pc[i]).collect();
            g.sort_unstable();
            g.dedup();
            let its: Vec<PhysAggItem> = items
                .iter()
                .map(|it| match it {
                    PhysAggItem::Col(i) => PhysAggItem::Col(pc[*i]),
                    PhysAggItem::Agg { func, arg, distinct } => {
                        PhysAggItem::Agg { func: *func, arg: pc[*arg], distinct: *distinct }
                    }
                })
                .collect();
            let est = if g.is_empty() { 1 } else { child.est_rows };
            let n = node.cols.len();
            let op = PlanOp::HashAggregate { group: g, items: its, names: names.clone() };
            (mk(op, vec![child], node.cols.clone(), est), identity(n), "group-sort")
        }
        PlanOp::Project { cols, names } => {
            let pc = &perms[0];
            let mut child = kids.remove(0);
            let mut idx: Vec<usize> = cols.iter().map(|&i| pc[i]).collect();
            let mut rule = "canon";
            while let PlanOp::Project { cols: inner, .. } = &child.op {
                idx = idx.iter().map(|&i| inner[i]).collect();
                let grand = child.children.remove(0);
                child = grand;
                rule = "project-collapse";
            }
            let est = child.est_rows;
            let n = node.cols.len();
            let op = PlanOp::Project { cols: idx, names: names.clone() };
            (mk(op, vec![child], node.cols.clone(), est), identity(n), rule)
        }
        PlanOp::Distinct => {
            let pc = perms[0].clone();
            let child = kids.remove(0);
            let cols = child.cols.clone();
            let est = child.est_rows;
            (mk(PlanOp::Distinct, vec![child], cols, est), pc, "canon")
        }
        PlanOp::Sort { keys } => {
            let pc = perms[0].clone();
            let child = kids.remove(0);
            let ks: Vec<(usize, bool)> = keys.iter().map(|&(i, d)| (pc[i], d)).collect();
            let cols = child.cols.clone();
            let est = child.est_rows;
            (mk(PlanOp::Sort { keys: ks }, vec![child], cols, est), pc, "canon")
        }
        PlanOp::Limit { n } => {
            let pc = perms[0].clone();
            let child = kids.remove(0);
            let cols = child.cols.clone();
            let est = child.est_rows.min(*n);
            (mk(PlanOp::Limit { n: *n }, vec![child], cols, est), pc, "canon")
        }
    }
}

/// Output permutation of a (possibly swapped) binary join: the old
/// left block had `perms[0].len()` columns, the old right block
/// `perms[1].len()`; `na` is the arity of the *new* left input.
fn join_perm(swap: bool, na: usize, perms: &[Vec<usize>]) -> Vec<usize> {
    let (pl, pr) = (&perms[0], &perms[1]);
    if swap {
        pl.iter().map(|&i| na + i).chain(pr.iter().copied()).collect()
    } else {
        pl.iter().copied().chain(pr.iter().map(|&j| na + j)).collect()
    }
}

/// Pushes one (already remapped, normalized) predicate as far down the
/// subtree as its column block allows. Returns false when the
/// predicate must stay in the enclosing Filter (e.g. it straddles both
/// join inputs). Estimates along the touched spine are recomputed.
fn try_push(node: &mut PlanNode, pred: &PhysPred, db: &Database) -> bool {
    if matches!(node.op, PlanOp::Scan { .. }) {
        if let PlanOp::Scan { relation, pushed, .. } = &mut node.op {
            let relation = relation.clone();
            pushed.push(pred.clone());
            normalize_preds(pushed);
            let n = pushed.len();
            node.est_rows = scan_est(db, &relation, n, node.est_rows);
        }
        return true;
    }
    if matches!(node.op, PlanOp::Filter { .. }) {
        let child_est = node.children[0].est_rows;
        if let PlanOp::Filter { preds } = &mut node.op {
            preds.push(pred.clone());
            normalize_preds(preds);
            let n = preds.len();
            node.est_rows = discount_n(child_est, n);
        }
        return true;
    }
    if matches!(node.op, PlanOp::HashJoin { .. } | PlanOp::CrossJoin) {
        let nl = node.children[0].cols.len();
        let idx = pred_indices(pred);
        let pushed = if idx.iter().all(|&i| i < nl) {
            try_push(&mut node.children[0], pred, db)
        } else if idx.iter().all(|&i| i >= nl) {
            try_push(&mut node.children[1], &shift_pred(pred, nl), db)
        } else {
            false
        };
        if pushed {
            let (l, r) = (node.children[0].est_rows, node.children[1].est_rows);
            node.est_rows =
                if matches!(node.op, PlanOp::CrossJoin) { l.saturating_mul(r) } else { l.max(r) };
            if let PlanOp::HashJoin { build_left, .. } = &mut node.op {
                *build_left = l < r;
            }
        }
        return pushed;
    }
    if matches!(node.op, PlanOp::DerivedTable { .. }) {
        // Planner normal form: a Filter directly above the derived
        // table (predicates never sink into the inner statement).
        let placeholder = PlanNode {
            id: 0,
            op: PlanOp::Distinct,
            children: Vec::new(),
            cols: Vec::new(),
            est_rows: 0,
        };
        let inner = std::mem::replace(node, placeholder);
        let est = discount_n(inner.est_rows, 1);
        let cols = inner.cols.clone();
        *node = mk(PlanOp::Filter { preds: vec![pred.clone()] }, vec![inner], cols, est);
        return true;
    }
    false
}

/// Builds a node with a placeholder id; [`canonicalize`] re-ids the
/// whole tree in pre-order once the pass completes.
fn mk(
    op: PlanOp,
    children: Vec<PlanNode>,
    cols: Vec<(String, String)>,
    est_rows: usize,
) -> PlanNode {
    PlanNode { id: 0, op, children, cols, est_rows }
}

fn assign_ids(node: &mut PlanNode, next: &mut usize) {
    node.id = *next;
    *next += 1;
    for c in &mut node.children {
        assign_ids(c, next);
    }
}

fn identity(n: usize) -> Vec<usize> {
    (0..n).collect()
}

/// Orders `EqCols` operands low/high: column equality is symmetric, so
/// both spellings are one predicate.
fn normalize_pred(p: PhysPred) -> PhysPred {
    match p {
        PhysPred::EqCols(l, r) if r < l => PhysPred::EqCols(r, l),
        other => other,
    }
}

fn pred_key(p: &PhysPred) -> (u8, usize, usize, String) {
    match p {
        PhysPred::EqCols(l, r) => (0, *l, *r, String::new()),
        PhysPred::ContainsCi(i, s) => (1, *i, 0, s.clone()),
        PhysPred::EqLit(i, v) => (2, *i, 0, v.to_string()),
    }
}

fn normalize_preds(preds: &mut Vec<PhysPred>) {
    for p in preds.iter_mut() {
        *p = normalize_pred(p.clone());
    }
    preds.sort_by_key(pred_key);
    preds.dedup();
}

fn remap_pred(p: &PhysPred, perm: &[usize]) -> PhysPred {
    match p {
        PhysPred::EqCols(l, r) => normalize_pred(PhysPred::EqCols(perm[*l], perm[*r])),
        PhysPred::ContainsCi(i, s) => PhysPred::ContainsCi(perm[*i], s.clone()),
        PhysPred::EqLit(i, v) => PhysPred::EqLit(perm[*i], v.clone()),
    }
}

fn pred_indices(p: &PhysPred) -> Vec<usize> {
    match p {
        PhysPred::EqCols(l, r) => vec![*l, *r],
        PhysPred::ContainsCi(i, _) | PhysPred::EqLit(i, _) => vec![*i],
    }
}

/// Rebases a predicate from a join's output layout onto its right
/// input (subtracting the left arity).
fn shift_pred(p: &PhysPred, by: usize) -> PhysPred {
    match p {
        PhysPred::EqCols(l, r) => normalize_pred(PhysPred::EqCols(l - by, r - by)),
        PhysPred::ContainsCi(i, s) => PhysPred::ContainsCi(i - by, s.clone()),
        PhysPred::EqLit(i, v) => PhysPred::EqLit(i - by, v.clone()),
    }
}

/// The planner's selectivity discount (a fixed 1/4 per predicate,
/// floored at one row), applied iteratively — matching `push_into`'s
/// one-call-per-predicate accounting.
fn discount_n(rows: usize, n: usize) -> usize {
    (0..n).fold(rows, |r, _| if r == 0 { 0 } else { (r >> 2).max(1) })
}

/// Canonical scan estimate: the base table's row count discounted once
/// per pushed predicate. Unknown relations keep the incoming estimate
/// (verification will reject them with a proper diagnostic).
fn scan_est(db: &Database, relation: &str, npreds: usize, fallback: usize) -> usize {
    db.table(relation).map(|t| discount_n(t.len(), npreds)).unwrap_or(fallback)
}
