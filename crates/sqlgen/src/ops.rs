//! Volcano-style execution of physical plans.
//!
//! Every operator implements the batch-`next` `Operator` protocol
//! (`open`/`next`/`close`); pipeline-friendly operators (scan with
//! pushdown, filter, project, distinct, limit) stream batches, while
//! pipeline breakers (hash-join build, aggregation, sort) drain their
//! input inside `open`. Each operator is wrapped in a `Metered` shim
//! that records rows in/out, batch counts and inclusive wall time into
//! the plan-indexed [`ExecStats`], so `aqks explain --analyze` and the
//! bench harness can attribute cost operator by operator.
//!
//! SQL semantics are inherited unchanged from the original interpreter:
//! aggregates skip NULLs, `SUM`/`MIN`/`MAX`/`AVG` over an empty group
//! yield NULL while `COUNT` yields 0, `AVG` is always a float, a global
//! aggregate returns exactly one row, and NULL join keys never match.
//! When the statement has no ORDER BY, output rows are stably sorted by
//! value so results are reproducible across runs and across plans.

use std::cell::RefCell;
use std::collections::{HashMap, HashSet};
use std::rc::Rc;
use std::time::{Duration, Instant};

use aqks_relational::{Database, Row, Value};

use crate::ast::AggFunc;
use crate::exec::ExecError;
use crate::plan::{PhysAggItem, PhysPred, PlanNode, PlanOp};
use crate::result::ResultTable;

/// Rows per batch handed between operators.
const BATCH_SIZE: usize = 1024;

/// Live metrics of one operator (indexed by [`PlanNode::id`]).
#[derive(Debug, Clone, Default)]
pub struct OpMetrics {
    /// Rows received from all inputs.
    pub rows_in: u64,
    /// Rows emitted.
    pub rows_out: u64,
    /// Batches emitted.
    pub batches: u64,
    /// Inclusive wall time (this operator plus its inputs).
    pub wall: Duration,
    /// Operator-specific annotation (e.g. hash-join build/probe sizes).
    pub note: Option<String>,
}

/// Per-operator metrics of one plan execution.
#[derive(Debug, Clone, Default)]
pub struct ExecStats {
    /// Metrics, indexed by [`PlanNode::id`].
    pub ops: Vec<OpMetrics>,
    /// End-to-end wall time of the plan run.
    pub wall: Duration,
}

impl ExecStats {
    /// Total rows emitted across all operators (a volume proxy: each row
    /// counted once per operator boundary it crosses).
    pub fn rows_flowed(&self) -> u64 {
        self.ops.iter().map(|m| m.rows_out).sum()
    }
}

impl std::fmt::Display for ExecStats {
    /// One-line summary — the single place execution stats are
    /// formatted for humans (the CLIs print this instead of
    /// hand-assembling the same fields).
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} operator(s), {} row(s) flowed, wall {}",
            self.ops.len(),
            self.rows_flowed(),
            crate::plan::fmt_dur(self.wall)
        )
    }
}

type StatsCell = Rc<RefCell<Vec<OpMetrics>>>;

/// The Volcano operator protocol: `open` prepares (pipeline breakers do
/// their work here), `next` yields owned row batches until `None`,
/// `close` releases state and finalizes metrics annotations.
trait Operator {
    /// Prepares the operator (and its inputs) for iteration.
    fn open(&mut self) -> Result<(), ExecError>;
    /// The next batch of rows, or `None` when exhausted.
    fn next(&mut self) -> Result<Option<Vec<Row>>, ExecError>;
    /// Releases state; called once after iteration.
    fn close(&mut self);
    /// Operator-specific metrics annotation, read at `close`.
    fn note(&self) -> Option<String> {
        None
    }
}

/// Shim recording metrics around an operator.
struct Metered<'a> {
    id: usize,
    stats: StatsCell,
    inner: Box<dyn Operator + 'a>,
}

impl Metered<'_> {
    fn bump<R>(&self, f: impl FnOnce(&mut OpMetrics) -> R) -> R {
        f(&mut self.stats.borrow_mut()[self.id])
    }
}

impl Operator for Metered<'_> {
    fn open(&mut self) -> Result<(), ExecError> {
        let t = Instant::now();
        let r = self.inner.open();
        self.bump(|m| m.wall += t.elapsed());
        r
    }

    fn next(&mut self) -> Result<Option<Vec<Row>>, ExecError> {
        let t = Instant::now();
        let r = self.inner.next();
        let elapsed = t.elapsed();
        self.bump(|m| {
            m.wall += elapsed;
            if let Ok(Some(batch)) = &r {
                m.rows_out += batch.len() as u64;
                m.batches += 1;
            }
        });
        r
    }

    fn close(&mut self) {
        let t = Instant::now();
        self.inner.close();
        let note = self.inner.note();
        self.bump(|m| {
            m.wall += t.elapsed();
            m.note = note;
        });
    }
}

/// Shim enforcing the ambient `aqks-guard` budget around an operator,
/// mirroring [`Metered`]: a deadline checkpoint before every `next` call
/// and a row charge for every batch emitted. Only inserted by [`build`]
/// when a governor is installed, so ungoverned plans pay nothing.
struct Guarded<'a> {
    /// Charge site, e.g. `"ops.HashJoin"` — names the operator whose
    /// output crossed the budget.
    site: &'static str,
    inner: Box<dyn Operator + 'a>,
}

impl Operator for Guarded<'_> {
    fn open(&mut self) -> Result<(), ExecError> {
        aqks_guard::checkpoint(self.site)?;
        self.inner.open()
    }

    fn next(&mut self) -> Result<Option<Vec<Row>>, ExecError> {
        aqks_guard::checkpoint(self.site)?;
        let r = self.inner.next()?;
        if let Some(batch) = &r {
            aqks_guard::charge_rows(self.site, batch.len() as u64)?;
        }
        Ok(r)
    }

    fn close(&mut self) {
        self.inner.close();
    }

    fn note(&self) -> Option<String> {
        self.inner.note()
    }
}

/// Replays rows materialized once by a shared subplan (see
/// `aqks-equiv`): the consumer site's whole subtree is replaced by this
/// operator, so the shared work executes exactly once per set. Batches
/// are re-emitted at the standard size, and the shim stack above
/// (metering, budget checkpoints at the `ops.Cached` site) is
/// preserved, so replayed rows are metered and charged like any other
/// operator output.
struct CachedRows {
    rows: Rc<Vec<Row>>,
    pos: usize,
}

impl Operator for CachedRows {
    fn open(&mut self) -> Result<(), ExecError> {
        self.pos = 0;
        Ok(())
    }

    fn next(&mut self) -> Result<Option<Vec<Row>>, ExecError> {
        if self.pos >= self.rows.len() {
            return Ok(None);
        }
        let end = (self.pos + BATCH_SIZE).min(self.rows.len());
        let batch = self.rows[self.pos..end].to_vec();
        self.pos = end;
        Ok(Some(batch))
    }

    fn close(&mut self) {}

    fn note(&self) -> Option<String> {
        Some(format!("cached rows={}", self.rows.len()))
    }
}

/// Budget charge site of an operator (static so [`aqks_guard::Tripped`]
/// can carry it without allocating).
fn guard_site(op: &PlanOp) -> &'static str {
    match op {
        PlanOp::Scan { .. } => "ops.Scan",
        PlanOp::DerivedTable { .. } => "ops.DerivedTable",
        PlanOp::Filter { .. } => "ops.Filter",
        PlanOp::HashJoin { .. } => "ops.HashJoin",
        PlanOp::CrossJoin => "ops.CrossJoin",
        PlanOp::HashAggregate { .. } => "ops.HashAggregate",
        PlanOp::Project { .. } => "ops.Project",
        PlanOp::Distinct => "ops.Distinct",
        PlanOp::Sort { .. } => "ops.Sort",
        PlanOp::Limit { .. } => "ops.Limit",
    }
}

// ---------------------------------------------------------------------------
// Operators
// ---------------------------------------------------------------------------

/// Sequential scan with scan-time predicate evaluation.
struct Scan<'a> {
    rows: &'a [Row],
    preds: &'a [PhysPred],
    pos: usize,
}

impl Operator for Scan<'_> {
    fn open(&mut self) -> Result<(), ExecError> {
        self.pos = 0;
        Ok(())
    }

    fn next(&mut self) -> Result<Option<Vec<Row>>, ExecError> {
        let mut out = Vec::new();
        while self.pos < self.rows.len() && out.len() < BATCH_SIZE {
            let row = &self.rows[self.pos];
            self.pos += 1;
            if self.preds.iter().all(|p| p.eval(row)) {
                out.push(row.clone());
            }
        }
        if out.is_empty() && self.pos >= self.rows.len() {
            Ok(None)
        } else {
            Ok(Some(out))
        }
    }

    fn close(&mut self) {}
}

/// Alias boundary over a planned subquery: forwards batches unchanged
/// (the rename is plan metadata only).
struct Passthrough<'a> {
    child: Metered<'a>,
}

impl Operator for Passthrough<'_> {
    fn open(&mut self) -> Result<(), ExecError> {
        self.child.open()
    }

    fn next(&mut self) -> Result<Option<Vec<Row>>, ExecError> {
        self.child.next()
    }

    fn close(&mut self) {
        self.child.close();
    }
}

/// Residual predicate application.
struct Filter<'a> {
    child: Metered<'a>,
    preds: &'a [PhysPred],
}

impl Operator for Filter<'_> {
    fn open(&mut self) -> Result<(), ExecError> {
        self.child.open()
    }

    fn next(&mut self) -> Result<Option<Vec<Row>>, ExecError> {
        while let Some(mut batch) = self.child.next()? {
            batch.retain(|row| self.preds.iter().all(|p| p.eval(row)));
            if !batch.is_empty() {
                return Ok(Some(batch));
            }
        }
        Ok(None)
    }

    fn close(&mut self) {
        self.child.close();
    }
}

/// Multi-key hash equi-join. The build side (chosen by the planner from
/// cardinality estimates) is drained into a hash table at `open`; the
/// probe side streams. Output columns are always left then right,
/// whichever side built. NULL keys never match on either side.
struct HashJoin<'a> {
    left: Metered<'a>,
    right: Metered<'a>,
    left_keys: &'a [usize],
    right_keys: &'a [usize],
    build_left: bool,
    table: HashMap<Vec<Value>, Vec<Row>>,
    build_rows: u64,
    probe_rows: u64,
}

impl HashJoin<'_> {
    fn key_of(row: &[Value], keys: &[usize]) -> Option<Vec<Value>> {
        let key: Vec<Value> = keys.iter().map(|&i| row[i].clone()).collect();
        if key.iter().any(Value::is_null) {
            None // NULL never joins.
        } else {
            Some(key)
        }
    }
}

impl Operator for HashJoin<'_> {
    fn open(&mut self) -> Result<(), ExecError> {
        aqks_guard::failpoint!("join.build");
        self.left.open()?;
        self.right.open()?;
        let (build, keys) = if self.build_left {
            (&mut self.left, self.left_keys)
        } else {
            (&mut self.right, self.right_keys)
        };
        while let Some(batch) = build.next()? {
            // Retained hash-table state is charged against the budget on
            // top of the child's streaming charge: materialized rows are
            // the memory hazard a row cap exists to bound.
            aqks_guard::charge_rows("ops.HashJoin.build", batch.len() as u64)?;
            for row in batch {
                self.build_rows += 1;
                if let Some(key) = Self::key_of(&row, keys) {
                    self.table.entry(key).or_default().push(row);
                }
            }
        }
        Ok(())
    }

    fn next(&mut self) -> Result<Option<Vec<Row>>, ExecError> {
        let (probe, keys) = if self.build_left {
            (&mut self.right, self.right_keys)
        } else {
            (&mut self.left, self.left_keys)
        };
        while let Some(batch) = probe.next()? {
            let mut out = Vec::new();
            for row in batch {
                self.probe_rows += 1;
                let Some(key) = Self::key_of(&row, keys) else { continue };
                if let Some(matches) = self.table.get(&key) {
                    for m in matches {
                        // Output layout is left ++ right regardless of
                        // which side built the table.
                        let combined = if self.build_left {
                            let mut r = m.clone();
                            r.extend(row.iter().cloned());
                            r
                        } else {
                            let mut r = row.clone();
                            r.extend(m.iter().cloned());
                            r
                        };
                        out.push(combined);
                    }
                }
            }
            if !out.is_empty() {
                return Ok(Some(out));
            }
        }
        Ok(None)
    }

    fn close(&mut self) {
        self.table.clear();
        self.left.close();
        self.right.close();
    }

    fn note(&self) -> Option<String> {
        Some(format!("build rows={} probe rows={}", self.build_rows, self.probe_rows))
    }
}

/// Cross product, used only when no equi-join connects the inputs. The
/// right (planner-chosen smallest) side is buffered; the left streams.
struct CrossJoin<'a> {
    left: Metered<'a>,
    right: Metered<'a>,
    buffer: Vec<Row>,
}

impl Operator for CrossJoin<'_> {
    fn open(&mut self) -> Result<(), ExecError> {
        self.left.open()?;
        self.right.open()?;
        while let Some(batch) = self.right.next()? {
            aqks_guard::charge_rows("ops.CrossJoin.build", batch.len() as u64)?;
            self.buffer.extend(batch);
        }
        Ok(())
    }

    fn next(&mut self) -> Result<Option<Vec<Row>>, ExecError> {
        if self.buffer.is_empty() {
            return Ok(None);
        }
        while let Some(batch) = self.left.next()? {
            if batch.is_empty() {
                continue;
            }
            let mut out = Vec::with_capacity(batch.len() * self.buffer.len());
            for l in &batch {
                for r in &self.buffer {
                    let mut row = l.clone();
                    row.extend(r.iter().cloned());
                    out.push(row);
                }
            }
            return Ok(Some(out));
        }
        Ok(None)
    }

    fn close(&mut self) {
        self.buffer.clear();
        self.left.close();
        self.right.close();
    }
}

/// Grouped/global aggregation (pipeline breaker).
struct HashAggregate<'a> {
    child: Metered<'a>,
    group: &'a [usize],
    items: &'a [PhysAggItem],
    output: Vec<Row>,
    emitted: usize,
    in_rows: u64,
    groups_out: u64,
}

impl Operator for HashAggregate<'_> {
    fn open(&mut self) -> Result<(), ExecError> {
        self.child.open()?;
        let mut order: Vec<Vec<Value>> = Vec::new();
        let mut groups: HashMap<Vec<Value>, Vec<Row>> = HashMap::new();
        while let Some(batch) = self.child.next()? {
            // Grouped rows are retained until finalize; charge them like
            // hash-join build state.
            aqks_guard::charge_rows("ops.HashAggregate.build", batch.len() as u64)?;
            for row in batch {
                self.in_rows += 1;
                let key: Vec<Value> = self.group.iter().map(|&i| row[i].clone()).collect();
                let entry = groups.entry(key.clone()).or_default();
                if entry.is_empty() {
                    order.push(key);
                }
                entry.push(row);
            }
        }
        aqks_guard::failpoint!("agg.finalize");
        // A global aggregate over an empty input still yields one row.
        if groups.is_empty() && self.group.is_empty() {
            order.push(Vec::new());
            groups.insert(Vec::new(), Vec::new());
        }
        self.groups_out = order.len() as u64;
        for key in order {
            let members = &groups[&key];
            let mut out = Vec::with_capacity(self.items.len());
            for item in self.items {
                match item {
                    PhysAggItem::Col(idx) => {
                        let v = members.first().map(|r| r[*idx].clone()).unwrap_or(Value::Null);
                        out.push(v);
                    }
                    PhysAggItem::Agg { func, arg, distinct } => {
                        let vals = members.iter().map(|r| &r[*arg]);
                        out.push(aggregate(*func, *distinct, vals));
                    }
                }
            }
            self.output.push(out);
        }
        Ok(())
    }

    fn next(&mut self) -> Result<Option<Vec<Row>>, ExecError> {
        if self.emitted >= self.output.len() {
            return Ok(None);
        }
        let end = (self.emitted + BATCH_SIZE).min(self.output.len());
        let batch = self.output[self.emitted..end].to_vec();
        self.emitted = end;
        Ok(Some(batch))
    }

    fn close(&mut self) {
        self.output.clear();
        self.child.close();
    }

    fn note(&self) -> Option<String> {
        Some(format!("groups={} from rows={}", self.groups_out, self.in_rows))
    }
}

/// Column projection.
struct Project<'a> {
    child: Metered<'a>,
    cols: &'a [usize],
}

impl Operator for Project<'_> {
    fn open(&mut self) -> Result<(), ExecError> {
        self.child.open()
    }

    fn next(&mut self) -> Result<Option<Vec<Row>>, ExecError> {
        match self.child.next()? {
            Some(batch) => Ok(Some(
                batch
                    .into_iter()
                    .map(|row| self.cols.iter().map(|&i| row[i].clone()).collect())
                    .collect(),
            )),
            None => Ok(None),
        }
    }

    fn close(&mut self) {
        self.child.close();
    }
}

/// Streaming duplicate elimination.
struct Distinct<'a> {
    child: Metered<'a>,
    seen: HashSet<Row>,
}

impl Operator for Distinct<'_> {
    fn open(&mut self) -> Result<(), ExecError> {
        self.child.open()
    }

    fn next(&mut self) -> Result<Option<Vec<Row>>, ExecError> {
        while let Some(batch) = self.child.next()? {
            let fresh: Vec<Row> =
                batch.into_iter().filter(|row| self.seen.insert(row.clone())).collect();
            if !fresh.is_empty() {
                return Ok(Some(fresh));
            }
        }
        Ok(None)
    }

    fn close(&mut self) {
        self.seen.clear();
        self.child.close();
    }
}

/// ORDER BY over the output columns (pipeline breaker).
struct Sort<'a> {
    child: Metered<'a>,
    keys: &'a [(usize, bool)],
    buffer: Vec<Row>,
    emitted: usize,
}

impl Operator for Sort<'_> {
    fn open(&mut self) -> Result<(), ExecError> {
        self.child.open()?;
        while let Some(batch) = self.child.next()? {
            self.buffer.extend(batch);
        }
        let keys = self.keys;
        self.buffer.sort_by(|a, b| {
            for &(i, desc) in keys {
                let ord = a[i].cmp(&b[i]);
                let ord = if desc { ord.reverse() } else { ord };
                if ord != std::cmp::Ordering::Equal {
                    return ord;
                }
            }
            std::cmp::Ordering::Equal
        });
        Ok(())
    }

    fn next(&mut self) -> Result<Option<Vec<Row>>, ExecError> {
        if self.emitted >= self.buffer.len() {
            return Ok(None);
        }
        let end = (self.emitted + BATCH_SIZE).min(self.buffer.len());
        let batch = self.buffer[self.emitted..end].to_vec();
        self.emitted = end;
        Ok(Some(batch))
    }

    fn close(&mut self) {
        self.buffer.clear();
        self.child.close();
    }
}

/// LIMIT: stops pulling from its input once satisfied.
struct Limit<'a> {
    child: Metered<'a>,
    remaining: usize,
}

impl Operator for Limit<'_> {
    fn open(&mut self) -> Result<(), ExecError> {
        self.child.open()
    }

    fn next(&mut self) -> Result<Option<Vec<Row>>, ExecError> {
        if self.remaining == 0 {
            return Ok(None);
        }
        match self.child.next()? {
            Some(mut batch) => {
                if batch.len() > self.remaining {
                    batch.truncate(self.remaining);
                }
                self.remaining -= batch.len();
                Ok(Some(batch))
            }
            None => Ok(None),
        }
    }

    fn close(&mut self) {
        self.child.close();
    }
}

// ---------------------------------------------------------------------------
// Building and running
// ---------------------------------------------------------------------------

/// Materialized rows substituted for plan subtrees by node id — the
/// executor half of `aqks-equiv`'s shared-subplan DAG.
pub type SharedRows = HashMap<usize, Rc<Vec<Row>>>;

fn build<'a>(
    node: &'a PlanNode,
    db: &'a Database,
    stats: &StatsCell,
    governed: bool,
    shared: &SharedRows,
) -> Result<Metered<'a>, ExecError> {
    if let Some(rows) = shared.get(&node.id) {
        let inner: Box<dyn Operator + 'a> = Box::new(CachedRows { rows: Rc::clone(rows), pos: 0 });
        let inner: Box<dyn Operator + 'a> =
            if governed { Box::new(Guarded { site: "ops.Cached", inner }) } else { inner };
        return Ok(Metered { id: node.id, stats: stats.clone(), inner });
    }
    let inner: Box<dyn Operator + 'a> = match &node.op {
        PlanOp::Scan { relation, pushed, .. } => {
            let table =
                db.table(relation).ok_or_else(|| ExecError::UnknownRelation(relation.clone()))?;
            Box::new(Scan { rows: table.rows(), preds: pushed, pos: 0 })
        }
        PlanOp::DerivedTable { .. } => {
            Box::new(Passthrough { child: build(&node.children[0], db, stats, governed, shared)? })
        }
        PlanOp::Filter { preds } => Box::new(Filter {
            child: build(&node.children[0], db, stats, governed, shared)?,
            preds,
        }),
        PlanOp::HashJoin { left_keys, right_keys, build_left } => Box::new(HashJoin {
            left: build(&node.children[0], db, stats, governed, shared)?,
            right: build(&node.children[1], db, stats, governed, shared)?,
            left_keys,
            right_keys,
            build_left: *build_left,
            table: HashMap::new(),
            build_rows: 0,
            probe_rows: 0,
        }),
        PlanOp::CrossJoin => Box::new(CrossJoin {
            left: build(&node.children[0], db, stats, governed, shared)?,
            right: build(&node.children[1], db, stats, governed, shared)?,
            buffer: Vec::new(),
        }),
        PlanOp::HashAggregate { group, items, .. } => Box::new(HashAggregate {
            child: build(&node.children[0], db, stats, governed, shared)?,
            group,
            items,
            output: Vec::new(),
            emitted: 0,
            in_rows: 0,
            groups_out: 0,
        }),
        PlanOp::Project { cols, .. } => Box::new(Project {
            child: build(&node.children[0], db, stats, governed, shared)?,
            cols,
        }),
        PlanOp::Distinct => Box::new(Distinct {
            child: build(&node.children[0], db, stats, governed, shared)?,
            seen: HashSet::new(),
        }),
        PlanOp::Sort { keys } => Box::new(Sort {
            child: build(&node.children[0], db, stats, governed, shared)?,
            keys,
            buffer: Vec::new(),
            emitted: 0,
        }),
        PlanOp::Limit { n } => Box::new(Limit {
            child: build(&node.children[0], db, stats, governed, shared)?,
            remaining: *n,
        }),
    };
    // Budget enforcement sits inside the metering shim so governed wall
    // time is attributed to the operator it bounds.
    let inner: Box<dyn Operator + 'a> =
        if governed { Box::new(Guarded { site: guard_site(&node.op), inner }) } else { inner };
    Ok(Metered { id: node.id, stats: stats.clone(), inner })
}

/// Executes a physical plan against `db`, returning the result table and
/// the per-operator metrics. When the plan carries no ORDER BY the rows
/// are stably sorted by value, so results are reproducible across runs
/// and plan changes.
pub fn run_plan(plan: &PlanNode, db: &Database) -> Result<(ResultTable, ExecStats), ExecError> {
    run_plan_with_shared(plan, db, &SharedRows::new())
}

/// [`run_plan`] with shared-subplan substitution: any node whose id
/// appears in `shared` is executed as a cached-rows replay instead of
/// its subtree (the subtree below it never builds or runs). The
/// `aqks-equiv` shared-subplan DAG materializes each shared subtree
/// once via [`materialize_plan`] and feeds the rows to every consumer
/// through this entry point.
pub fn run_plan_with_shared(
    plan: &PlanNode,
    db: &Database,
    shared: &SharedRows,
) -> Result<(ResultTable, ExecStats), ExecError> {
    let (mut rows, stats) = pull_rows(plan, db, shared)?;
    if !plan.is_ordered() {
        rows.sort();
    }
    let mut table = ResultTable::new(plan.output_names());
    table.rows = rows;
    Ok((table, stats))
}

/// Executes a plan and returns its raw output rows, *without* the
/// stabilizing sort or column naming of [`run_plan`] — the
/// materialization primitive for shared subtrees, whose consumers need
/// operator output order, not presentation order.
pub fn materialize_plan(
    plan: &PlanNode,
    db: &Database,
) -> Result<(Vec<Row>, ExecStats), ExecError> {
    pull_rows(plan, db, &SharedRows::new())
}

/// Builds, opens and drains a plan, collecting all rows and metrics.
fn pull_rows(
    plan: &PlanNode,
    db: &Database,
    shared: &SharedRows,
) -> Result<(Vec<Row>, ExecStats), ExecError> {
    let t0 = Instant::now();
    let stats: StatsCell = Rc::new(RefCell::new(vec![OpMetrics::default(); plan.max_id() + 1]));
    // One ambient probe per plan: ungoverned runs skip the Guarded shims
    // entirely, keeping the default path free.
    let governed = aqks_guard::current().is_some();
    let mut root = build(plan, db, &stats, governed, shared)?;
    root.open()?;
    let mut rows: Vec<Row> = Vec::new();
    while let Some(batch) = root.next()? {
        rows.extend(batch);
    }
    root.close();
    drop(root);

    let mut ops =
        Rc::try_unwrap(stats).map(RefCell::into_inner).unwrap_or_else(|rc| rc.borrow().clone());
    // rows-in is the sum of each node's children's rows-out (zero below
    // a cached replay: those subtrees never ran).
    plan.visit(&mut |node| {
        let rows_in: u64 = node.children.iter().map(|c| ops[c.id].rows_out).sum();
        ops[node.id].rows_in = rows_in;
    });
    // When an observability recorder is active on this thread (the
    // engine's `exec` span), graft the per-operator metrics into its
    // span tree so operator costs and pipeline phases land in one trace.
    if let Some(rec) = aqks_obs::current() {
        record_op_spans(&rec, plan, &ops, t0, None);
    }
    Ok((rows, ExecStats { ops, wall: t0.elapsed() }))
}

/// Short operator name for trace spans (the EXPLAIN label minus its
/// plan-specific detail, so span names are stable across queries).
fn op_name(op: &PlanOp) -> &'static str {
    match op {
        PlanOp::Scan { .. } => "Scan",
        PlanOp::DerivedTable { .. } => "DerivedTable",
        PlanOp::Filter { .. } => "Filter",
        PlanOp::HashJoin { .. } => "HashJoin",
        PlanOp::CrossJoin => "CrossJoin",
        PlanOp::HashAggregate { .. } => "HashAggregate",
        PlanOp::Project { .. } => "Project",
        PlanOp::Distinct => "Distinct",
        PlanOp::Sort { .. } => "Sort",
        PlanOp::Limit { .. } => "Limit",
    }
}

/// Records one completed span per plan operator, nested by plan
/// structure. Operator wall times are *inclusive* (an operator's clock
/// runs while it pulls from its inputs), so parent/child spans nest like
/// an icicle graph and per-span self time is meaningful. Spans start at
/// the plan run's `t0`: operators execute interleaved, so only the
/// durations — not the offsets — are physical.
fn record_op_spans(
    rec: &aqks_obs::Recorder,
    node: &PlanNode,
    ops: &[OpMetrics],
    t0: Instant,
    parent: Option<&aqks_obs::SpanHandle>,
) {
    let m = &ops[node.id];
    let handle = rec.record_span(
        parent,
        format!("op:{}", op_name(&node.op)),
        t0,
        m.wall,
        &[("rows_in", m.rows_in), ("rows_out", m.rows_out), ("batches", m.batches)],
    );
    for c in &node.children {
        record_op_spans(rec, c, ops, t0, Some(&handle));
    }
}

/// Evaluates one aggregate over a group's values (NULLs skipped).
pub(crate) fn aggregate<'a, I: Iterator<Item = &'a Value>>(
    func: AggFunc,
    distinct: bool,
    vals: I,
) -> Value {
    let mut non_null: Vec<&Value> = vals.filter(|v| !v.is_null()).collect();
    if distinct {
        let mut seen = HashSet::new();
        non_null.retain(|v| seen.insert((*v).clone()));
    }
    match func {
        AggFunc::Count => Value::Int(non_null.len() as i64),
        AggFunc::Sum => {
            let all_int = non_null.iter().all(|v| matches!(v, Value::Int(_)));
            let nums: Vec<f64> = non_null.iter().filter_map(|v| v.as_f64()).collect();
            if nums.is_empty() {
                // Empty group, or nothing numeric (SUM over text): NULL.
                Value::Null
            } else if all_int {
                Value::Int(nums.iter().map(|&f| f as i64).sum())
            } else {
                Value::Float(nums.iter().sum())
            }
        }
        AggFunc::Avg => {
            let nums: Vec<f64> = non_null.iter().filter_map(|v| v.as_f64()).collect();
            if nums.is_empty() {
                Value::Null
            } else {
                Value::Float(nums.iter().sum::<f64>() / nums.len() as f64)
            }
        }
        AggFunc::Min => non_null.iter().min().map(|v| (*v).clone()).unwrap_or(Value::Null),
        AggFunc::Max => non_null.iter().max().map(|v| (*v).clone()).unwrap_or(Value::Null),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{ColumnRef, Predicate, SelectItem, SelectStatement, TableExpr};
    use crate::exec::{execute, execute_with_stats};
    use crate::plan::plan;
    use aqks_relational::{AttrType, RelationSchema};

    fn col(q: &str, c: &str) -> ColumnRef {
        ColumnRef::new(q, c)
    }

    /// Two relations keyed on (a, b) with NULLs in the key columns on
    /// BOTH sides; a NULL on either side of either key must not match,
    /// and NULL = NULL must not match either.
    #[test]
    fn multi_key_hash_join_skips_null_keys_on_both_sides() {
        let mut db = Database::new("nulls");
        let mut l = RelationSchema::new("L");
        l.add_attr("A", AttrType::Text).add_attr("B", AttrType::Int).add_attr("X", AttrType::Text);
        db.add_relation(l).unwrap();
        let mut r = RelationSchema::new("R");
        r.add_attr("A", AttrType::Text).add_attr("B", AttrType::Int).add_attr("Y", AttrType::Text);
        db.add_relation(r).unwrap();
        for (a, b, x) in [
            (Value::str("k1"), Value::Int(1), "l1"),
            (Value::str("k1"), Value::Int(2), "l2"),
            (Value::Null, Value::Int(1), "l-null-a"),
            (Value::str("k2"), Value::Null, "l-null-b"),
            (Value::Null, Value::Null, "l-null-both"),
        ] {
            db.insert("L", vec![a, b, Value::str(x)]).unwrap();
        }
        for (a, b, y) in [
            (Value::str("k1"), Value::Int(1), "r1"),
            (Value::str("k1"), Value::Int(1), "r1bis"),
            (Value::Null, Value::Int(1), "r-null-a"),
            (Value::str("k2"), Value::Null, "r-null-b"),
            (Value::Null, Value::Null, "r-null-both"),
        ] {
            db.insert("R", vec![a, b, Value::str(y)]).unwrap();
        }
        let stmt = SelectStatement {
            items: vec![
                SelectItem::Column { col: col("L", "X"), alias: None },
                SelectItem::Column { col: col("R", "Y"), alias: None },
            ],
            from: vec![
                TableExpr::Relation { name: "L".into(), alias: "L".into() },
                TableExpr::Relation { name: "R".into(), alias: "R".into() },
            ],
            predicates: vec![
                Predicate::JoinEq(col("L", "A"), col("R", "A")),
                Predicate::JoinEq(col("L", "B"), col("R", "B")),
            ],
            ..Default::default()
        };
        let (t, stats) = execute_with_stats(&stmt, &db).unwrap();
        // Only (k1, 1) matches, twice on the right.
        assert_eq!(t.len(), 2, "{t}");
        for row in &t.rows {
            assert_eq!(row[0], Value::str("l1"));
        }
        // Both join keys were consumed by one multi-key hash join.
        let p = plan(&stmt, &db).unwrap();
        let mut joins = 0;
        p.visit(&mut |n| {
            if let crate::plan::PlanOp::HashJoin { left_keys, .. } = &n.op {
                joins += 1;
                assert_eq!(left_keys.len(), 2);
            }
        });
        assert_eq!(joins, 1);
        assert!(stats.ops.iter().any(|m| m.note.is_some()), "join recorded build/probe note");
    }

    /// Metrics invariants: rows_in of every operator equals the sum of
    /// its children's rows_out, and the root's rows_out matches the
    /// result cardinality.
    #[test]
    fn stats_rows_are_consistent_across_the_tree() {
        let mut db = Database::new("t");
        let mut s = RelationSchema::new("T");
        s.add_attr("K", AttrType::Int).add_attr("V", AttrType::Int);
        db.add_relation(s).unwrap();
        for i in 0..2500i64 {
            db.insert("T", vec![Value::Int(i % 7), Value::Int(i)]).unwrap();
        }
        let stmt = SelectStatement {
            items: vec![
                SelectItem::Column { col: col("T", "K"), alias: None },
                SelectItem::Aggregate {
                    func: crate::ast::AggFunc::Count,
                    arg: col("T", "V"),
                    distinct: false,
                    alias: "n".into(),
                },
            ],
            from: vec![TableExpr::Relation { name: "T".into(), alias: "T".into() }],
            group_by: vec![col("T", "K")],
            ..Default::default()
        };
        let p = plan(&stmt, &db).unwrap();
        let (t, stats) = run_plan(&p, &db).unwrap();
        assert_eq!(t.len(), 7);
        p.visit(&mut |n| {
            let expect: u64 = n.children.iter().map(|c| stats.ops[c.id].rows_out).sum();
            assert_eq!(stats.ops[n.id].rows_in, expect, "node {}", n.label());
        });
        assert_eq!(stats.ops[p.id].rows_out, 7);
        // 2500 rows cross the batch boundary: the scan emitted >1 batch.
        let scan = p.children[0].id;
        assert!(stats.ops[scan].batches >= 3, "batched scan: {}", stats.ops[scan].batches);
        assert_eq!(stats.ops[scan].rows_out, 2500);
    }

    /// LIMIT stops pulling batches from its input once satisfied.
    #[test]
    fn limit_short_circuits_the_scan() {
        let mut db = Database::new("t");
        let mut s = RelationSchema::new("T");
        s.add_attr("V", AttrType::Int);
        db.add_relation(s).unwrap();
        for i in 0..10_000i64 {
            db.insert("T", vec![Value::Int(i)]).unwrap();
        }
        let stmt = SelectStatement {
            items: vec![SelectItem::Column { col: col("T", "V"), alias: None }],
            from: vec![TableExpr::Relation { name: "T".into(), alias: "T".into() }],
            limit: Some(5),
            ..Default::default()
        };
        let p = plan(&stmt, &db).unwrap();
        let (t, stats) = run_plan(&p, &db).unwrap();
        assert_eq!(t.len(), 5);
        let mut scan_out = 0;
        p.visit(&mut |n| {
            if matches!(n.op, crate::plan::PlanOp::Scan { .. }) {
                scan_out = stats.ops[n.id].rows_out;
            }
        });
        assert!(scan_out <= 1024, "scan stopped after one batch, saw {scan_out}");
    }

    /// Equal results and stable order from repeated runs (the
    /// no-ORDER-BY canonicalization).
    #[test]
    fn repeated_runs_are_identical() {
        let mut db = Database::new("t");
        let mut s = RelationSchema::new("T");
        s.add_attr("K", AttrType::Int).add_attr("V", AttrType::Text);
        db.add_relation(s).unwrap();
        for i in 0..50i64 {
            db.insert("T", vec![Value::Int(i % 11), Value::str(format!("v{i}"))]).unwrap();
        }
        let stmt = SelectStatement {
            items: vec![
                SelectItem::Column { col: col("T", "K"), alias: None },
                SelectItem::Column { col: col("T", "V"), alias: None },
            ],
            from: vec![TableExpr::Relation { name: "T".into(), alias: "T".into() }],
            ..Default::default()
        };
        let first = crate::exec::execute(&stmt, &db).unwrap();
        for _ in 0..5 {
            assert_eq!(crate::exec::execute(&stmt, &db).unwrap().rows, first.rows);
        }
        assert!(first.rows.windows(2).all(|w| w[0] <= w[1]));
    }
    /// Helper: a Student-Enrol join statement over a fresh database with
    /// `n` students and `2n` enrolments (Enrol is the larger side, so
    /// the planner builds the hash table from Student).
    fn join_fixture(n: i64) -> (Database, SelectStatement) {
        let mut db = Database::new("gov");
        let mut s = RelationSchema::new("Student");
        s.add_attr("Sid", AttrType::Int).add_attr("Sname", AttrType::Text);
        db.add_relation(s).unwrap();
        let mut e = RelationSchema::new("Enrol");
        e.add_attr("Sid", AttrType::Int).add_attr("Code", AttrType::Text);
        db.add_relation(e).unwrap();
        for i in 0..n {
            db.insert("Student", vec![Value::Int(i), Value::str(format!("s{i}"))]).unwrap();
            for j in 0..2 {
                db.insert("Enrol", vec![Value::Int(i), Value::str(format!("c{j}"))]).unwrap();
            }
        }
        let stmt = SelectStatement {
            items: vec![
                SelectItem::Column { col: col("S", "Sname"), alias: None },
                SelectItem::Column { col: col("E", "Code"), alias: None },
            ],
            from: vec![
                TableExpr::Relation { name: "Student".into(), alias: "S".into() },
                TableExpr::Relation { name: "Enrol".into(), alias: "E".into() },
            ],
            predicates: vec![Predicate::JoinEq(col("S", "Sid"), col("E", "Sid"))],
            ..Default::default()
        };
        (db, stmt)
    }

    /// Row cap sized to survive the build-side scan but not the hash
    /// table it feeds: the trip names `ops.HashJoin.build`, the
    /// materialization site, not the streaming scan.
    #[test]
    fn row_cap_trips_inside_hash_join_build() {
        let (db, stmt) = join_fixture(50);
        let gov = aqks_guard::Governor::new(&aqks_guard::Budget::unlimited().with_max_rows(60));
        let _g = aqks_guard::install(&gov);
        let err = execute(&stmt, &db).unwrap_err();
        match err {
            ExecError::Budget(t) => {
                assert_eq!(t.kind, aqks_guard::BudgetKind::Rows);
                assert_eq!(t.site, "ops.HashJoin.build");
            }
            other => panic!("expected budget trip, got {other:?}"),
        }
        assert_eq!(gov.trip().map(|t| t.site), Some("ops.HashJoin.build"));
    }

    /// An expired deadline cancels the plan at the next per-batch
    /// checkpoint instead of running to completion.
    #[test]
    fn expired_deadline_cancels_next_batch() {
        let (db, stmt) = join_fixture(50);
        let gov = aqks_guard::Governor::new(
            &aqks_guard::Budget::unlimited().with_timeout(Duration::ZERO),
        );
        let _g = aqks_guard::install(&gov);
        let err = execute(&stmt, &db).unwrap_err();
        match err {
            ExecError::Budget(t) => {
                assert_eq!(t.kind, aqks_guard::BudgetKind::Deadline);
                assert!(t.site.starts_with("ops."), "deadline caught in an operator: {}", t.site);
            }
            other => panic!("expected deadline trip, got {other:?}"),
        }
    }

    /// Without an installed governor the same query runs to completion —
    /// the Guarded shim is not even constructed.
    #[test]
    fn ungoverned_plans_are_unaffected() {
        let (db, stmt) = join_fixture(50);
        let t = execute(&stmt, &db).unwrap();
        assert_eq!(t.len(), 100);
    }

    #[cfg(feature = "failpoints")]
    #[test]
    fn join_build_failpoint_surfaces_typed_error() {
        let (db, stmt) = join_fixture(5);
        aqks_guard::failpoint::enable("join.build");
        let err = execute(&stmt, &db).unwrap_err();
        assert_eq!(err, ExecError::Fault("join.build"));
        aqks_guard::failpoint::disable("join.build");
        assert_eq!(execute(&stmt, &db).unwrap().len(), 10);
    }

    #[cfg(feature = "failpoints")]
    #[test]
    fn agg_finalize_failpoint_surfaces_typed_error() {
        let mut db = Database::new("t");
        let mut s = RelationSchema::new("T");
        s.add_attr("K", AttrType::Int);
        db.add_relation(s).unwrap();
        db.insert("T", vec![Value::Int(1)]).unwrap();
        let stmt = SelectStatement {
            items: vec![SelectItem::Aggregate {
                func: AggFunc::Count,
                arg: col("T", "K"),
                distinct: false,
                alias: "n".into(),
            }],
            from: vec![TableExpr::Relation { name: "T".into(), alias: "T".into() }],
            ..Default::default()
        };
        aqks_guard::failpoint::enable("agg.finalize");
        let err = execute(&stmt, &db).unwrap_err();
        assert_eq!(err, ExecError::Fault("agg.finalize"));
        aqks_guard::failpoint::clear();
        assert_eq!(execute(&stmt, &db).unwrap().scalar(), Some(&Value::Int(1)));
    }
}
