//! Error type of the semantic engine.

use std::fmt;

/// Errors surfaced by query processing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CoreError {
    /// The query string violates Definition 1's constraints.
    Parse(String),
    /// A term matches nothing in the database.
    NoMatch(String),
    /// An operator operand's matches violate the match-level constraints
    /// (e.g. `SUM` followed by something that is not an attribute name).
    BadOperand(String),
    /// No connected query pattern exists for any interpretation.
    NoPattern,
    /// The static analyzer (`aqks-analyze`) found an error-severity
    /// defect in a generated statement — a translation bug.
    Analysis(String),
    /// SQL execution failed (executor bug or malformed translation).
    Exec(String),
    /// Schema-level problem (e.g. ORM graph construction failed).
    Schema(String),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Parse(m) => write!(f, "query parse error: {m}"),
            CoreError::NoMatch(t) => write!(f, "term `{t}` matches nothing in the database"),
            CoreError::BadOperand(m) => write!(f, "invalid operator operand: {m}"),
            CoreError::NoPattern => write!(f, "no connected query pattern exists"),
            CoreError::Analysis(m) => write!(f, "static analysis rejected generated SQL: {m}"),
            CoreError::Exec(m) => write!(f, "execution error: {m}"),
            CoreError::Schema(m) => write!(f, "schema error: {m}"),
        }
    }
}

impl std::error::Error for CoreError {}

impl From<aqks_sqlgen::ExecError> for CoreError {
    fn from(e: aqks_sqlgen::ExecError) -> Self {
        CoreError::Exec(e.to_string())
    }
}

impl From<aqks_relational::Error> for CoreError {
    fn from(e: aqks_relational::Error) -> Self {
        CoreError::Schema(e.to_string())
    }
}
